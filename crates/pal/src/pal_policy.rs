//! The PAL placement policy (Section III-C, Algorithm 2).
//!
//! PAL co-optimizes locality and variability: for a job that fits within a
//! node (`1 < N_j <= GPUS_PER_NODE`) it traverses the class's L×V matrix in
//! ascending LV-product order and takes the first feasible allocation —
//! packed allocations from good-enough bins first, spilling across nodes
//! only when packing would require a catastrophically slow bin. Jobs larger
//! than a node must pay the inter-node penalty anyway and are placed
//! PM-First (Algorithm 2, lines 23–25); single-GPU jobs have no locality
//! dimension and are likewise PM-First.
//!
//! Because traversal is ordered by LV-product, the first feasible entry
//! yields the globally minimal combined slowdown for the job (over the
//! binned scores) — the property `tests` verify against exhaustive search.

use crate::lv::{LocalityLevel, LvMatrix};
use crate::pm_scores::PmScoreTable;
use crate::pmfirst::{class_priority_order, pmfirst_gpus};
use pal_cluster::{ClusterState, GpuId, JobClass, VariabilityProfile};
use pal_kmeans::ScoreBinning;
use pal_sim::{PlacementCtx, PlacementPolicy, PlacementRequest};

/// Score-filter tolerance for "PM-score ≤ V_i" comparisons.
const EPS: f64 = 1e-9;

/// PAL placement.
#[derive(Debug, Clone)]
pub struct PalPlacement {
    table: PmScoreTable,
}

impl PalPlacement {
    /// Build from a variability profile using the paper's default binning.
    pub fn new(profile: &VariabilityProfile) -> Self {
        PalPlacement {
            table: PmScoreTable::build_default(profile),
        }
    }

    /// Build with a custom binning configuration.
    pub fn with_binning(profile: &VariabilityProfile, binning: &ScoreBinning) -> Self {
        PalPlacement {
            table: PmScoreTable::build(profile, binning),
        }
    }

    /// The precomputed PM-score table.
    pub fn table(&self) -> &PmScoreTable {
        &self.table
    }

    /// The `(L_within, V_i)` arm: among nodes whose filtered (score ≤ v)
    /// free GPUs can hold the whole job, pick the allocation with the
    /// lowest maximum PM-score (`GenerateCombos` + `GetMinV`; taking the
    /// best `n` scores per node is exactly the min-max combo, so no
    /// explicit combination enumeration is needed). Ties break on total
    /// score, then node id.
    fn packed_candidate(
        &self,
        class: JobClass,
        demand: usize,
        v_cap: f64,
        state: &ClusterState,
    ) -> Option<Vec<GpuId>> {
        let mut best: Option<(f64, f64, Vec<GpuId>)> = None;
        for node_gpus in state.free_gpus_by_node() {
            let mut filt: Vec<GpuId> = node_gpus
                .into_iter()
                .filter(|&g| self.table.score(class, g) <= v_cap + EPS)
                .collect();
            if filt.len() < demand {
                continue;
            }
            filt.sort_by(|&a, &b| {
                self.table
                    .score(class, a)
                    .partial_cmp(&self.table.score(class, b))
                    .expect("NaN PM-score")
                    .then(a.cmp(&b))
            });
            filt.truncate(demand);
            let max_s = filt
                .iter()
                .map(|&g| self.table.score(class, g))
                .fold(0.0f64, f64::max);
            let sum_s: f64 = filt.iter().map(|&g| self.table.score(class, g)).sum();
            let better = match &best {
                None => true,
                Some((bm, bs, _)) => {
                    max_s < bm - EPS || ((max_s - bm).abs() <= EPS && sum_s < bs - EPS)
                }
            };
            if better {
                best = Some((max_s, sum_s, filt));
            }
        }
        best.map(|(_, _, alloc)| alloc)
    }

    /// The `(L_across, V_i)` arm: PM-First over the filtered free list.
    fn spread_candidate(
        &self,
        class: JobClass,
        demand: usize,
        v_cap: f64,
        state: &ClusterState,
    ) -> Option<Vec<GpuId>> {
        let mut filt: Vec<GpuId> = state
            .free_gpus()
            .into_iter()
            .filter(|&g| self.table.score(class, g) <= v_cap + EPS)
            .collect();
        if filt.len() < demand {
            return None;
        }
        filt.sort_by(|&a, &b| {
            self.table
                .score(class, a)
                .partial_cmp(&self.table.score(class, b))
                .expect("NaN PM-score")
                .then(a.cmp(&b))
        });
        filt.truncate(demand);
        Some(filt)
    }
}

impl PlacementPolicy for PalPlacement {
    fn name(&self) -> &str {
        "PAL"
    }

    fn placement_order(&self, requests: &[PlacementRequest], _ctx: &PlacementCtx) -> Vec<usize> {
        class_priority_order(requests)
    }

    fn place(
        &mut self,
        request: &PlacementRequest,
        ctx: &PlacementCtx,
        state: &ClusterState,
    ) -> Vec<GpuId> {
        let demand = request.gpu_demand;
        let per_node = state.topology().gpus_per_node;

        if demand > 1 && demand <= per_node {
            let matrix = LvMatrix::new(
                self.table.levels(request.class),
                ctx.locality.l_within,
                ctx.locality.l_across_for(request.model),
            );
            for entry in matrix.traverse() {
                let candidate = match entry.locality {
                    LocalityLevel::Within => {
                        self.packed_candidate(request.class, demand, entry.v_value, state)
                    }
                    LocalityLevel::Across => {
                        self.spread_candidate(request.class, demand, entry.v_value, state)
                    }
                };
                if let Some(alloc) = candidate {
                    return alloc;
                }
            }
        }
        // N_j == 1, N_j > GPUS_PER_NODE, or (defensively) an exhausted
        // traversal: PM-First selection.
        pmfirst_gpus(&self.table, request.class, demand, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pal_cluster::{ClusterTopology, LocalityModel};
    use pal_trace::JobId;

    fn req(job: u32, class: JobClass, demand: usize) -> PlacementRequest {
        PlacementRequest {
            job: JobId(job),
            model: "resnet50",
            class,
            gpu_demand: demand,
        }
    }

    /// Raw scores chosen so binning keeps them distinct-ish: node 0 has two
    /// great and two terrible GPUs; node 1 is uniformly mediocre.
    fn split_profile() -> VariabilityProfile {
        let class_a = vec![0.90, 0.90, 2.60, 2.60, 1.05, 1.05, 1.05, 1.05];
        VariabilityProfile::from_raw(vec![class_a.clone(), class_a.clone(), class_a])
    }

    fn ctx_with<'a>(
        profile: &'a VariabilityProfile,
        locality: &'a LocalityModel,
    ) -> PlacementCtx<'a> {
        PlacementCtx { profile, locality }
    }

    #[test]
    fn prefers_packed_mediocre_over_spread_good() {
        // 2 GPUs wanted. Packed options: (0.90, 0.90) in node 0 — great and
        // packed. PAL must find it.
        let profile = split_profile();
        let state = ClusterState::new(ClusterTopology::new(2, 4));
        let locality = LocalityModel::uniform(1.5);
        let mut pal = PalPlacement::new(&profile);
        let alloc = pal.place(
            &req(0, JobClass::A, 2),
            &ctx_with(&profile, &locality),
            &state,
        );
        assert_eq!(alloc, vec![GpuId(0), GpuId(1)]);
    }

    #[test]
    fn avoids_terrible_bin_by_spreading() {
        // Want 3 GPUs. Packed-in-node-0 needs a 2.60 GPU (product 2.6);
        // packed-in-node-1 gives max 1.05 (product 1.05) — that wins. Now
        // busy out one node-1 GPU so node 1 can only give 3 with... it has
        // 4, keep 3 free: still fine. Then busy two: node 1 has 2 free, no
        // packed 3-set without the 2.60 bin -> PAL must spread (1.5 × 1.05
        // = 1.575) rather than pack with 2.60.
        let profile = split_profile();
        let mut state = ClusterState::new(ClusterTopology::new(2, 4));
        state.allocate(&[GpuId(4), GpuId(5)]);
        let locality = LocalityModel::uniform(1.5);
        let mut pal = PalPlacement::new(&profile);
        let alloc = pal.place(
            &req(0, JobClass::A, 3),
            &ctx_with(&profile, &locality),
            &state,
        );
        assert!(state.topology().spans_nodes(&alloc));
        let worst = alloc
            .iter()
            .map(|&g| pal.table().score(JobClass::A, g))
            .fold(0.0f64, f64::max);
        assert!(worst < 2.0, "PAL picked a terrible GPU (max score {worst})");
    }

    #[test]
    fn packs_with_bad_bin_when_locality_is_expensive_enough() {
        // Same situation but L_across = 3.0: spread product = 3 × 1.05 =
        // 3.15 > packed-with-2.60 product 2.60 -> PAL packs on node 0.
        let profile = split_profile();
        let mut state = ClusterState::new(ClusterTopology::new(2, 4));
        state.allocate(&[GpuId(4), GpuId(5)]);
        let locality = LocalityModel::uniform(3.0);
        let mut pal = PalPlacement::new(&profile);
        let alloc = pal.place(
            &req(0, JobClass::A, 3),
            &ctx_with(&profile, &locality),
            &state,
        );
        assert!(!state.topology().spans_nodes(&alloc));
        assert!(alloc.contains(&GpuId(2)) || alloc.contains(&GpuId(3)));
    }

    #[test]
    fn single_gpu_job_is_pmfirst() {
        let profile = split_profile();
        let state = ClusterState::new(ClusterTopology::new(2, 4));
        let locality = LocalityModel::uniform(1.5);
        let mut pal = PalPlacement::new(&profile);
        let alloc = pal.place(
            &req(0, JobClass::A, 1),
            &ctx_with(&profile, &locality),
            &state,
        );
        assert_eq!(alloc, vec![GpuId(0)]); // globally best score
    }

    #[test]
    fn bigger_than_node_job_is_pmfirst() {
        let profile = split_profile();
        let state = ClusterState::new(ClusterTopology::new(2, 4));
        let locality = LocalityModel::uniform(1.5);
        let mut pal = PalPlacement::new(&profile);
        let mut pmf = crate::pmfirst::PmFirstPlacement::new(&profile);
        let ctx = ctx_with(&profile, &locality);
        let a = pal.place(&req(0, JobClass::A, 6), &ctx, &state);
        let b = pmf.place(&req(0, JobClass::A, 6), &ctx, &state);
        assert_eq!(a, b);
    }

    #[test]
    fn class_c_ignores_variability_and_packs() {
        // Give class C flat scores; PAL should behave locality-first.
        let class_a = vec![0.90, 0.90, 2.60, 2.60, 1.05, 1.05, 1.05, 1.05];
        let class_c = vec![1.0; 8];
        let profile = VariabilityProfile::from_raw(vec![class_a.clone(), class_a, class_c]);
        let state = ClusterState::new(ClusterTopology::new(2, 4));
        let locality = LocalityModel::uniform(1.5);
        let mut pal = PalPlacement::new(&profile);
        let alloc = pal.place(
            &req(0, JobClass::C, 4),
            &ctx_with(&profile, &locality),
            &state,
        );
        assert!(!state.topology().spans_nodes(&alloc));
    }

    #[test]
    fn placement_order_is_class_priority() {
        let profile = split_profile();
        let locality = LocalityModel::uniform(1.5);
        let pal = PalPlacement::new(&profile);
        let reqs = vec![
            req(0, JobClass::C, 1),
            req(1, JobClass::A, 1),
            req(2, JobClass::B, 1),
        ];
        assert_eq!(
            pal.placement_order(&reqs, &ctx_with(&profile, &locality)),
            vec![1, 2, 0]
        );
    }

    /// PAL's traversal achieves the exhaustive minimum LV-product over all
    /// feasible allocations (see module docs for why first-feasible is
    /// optimal).
    #[test]
    fn achieves_exhaustive_minimum_lv_product() {
        let scenarios: Vec<(Vec<f64>, Vec<GpuId>, usize, f64)> = vec![
            // (class-A raw scores per GPU, busy GPUs, demand, l_across)
            (
                vec![0.90, 0.90, 2.60, 2.60, 1.05, 1.05, 1.05, 1.05],
                vec![GpuId(4), GpuId(5)],
                3,
                1.5,
            ),
            (
                vec![0.90, 0.90, 2.60, 2.60, 1.05, 1.05, 1.05, 1.05],
                vec![GpuId(4), GpuId(5)],
                3,
                3.0,
            ),
            (vec![1.0, 1.3, 1.3, 1.0, 0.8, 2.4, 0.8, 2.4], vec![], 2, 1.7),
            (
                vec![1.0, 1.3, 1.3, 1.0, 0.8, 2.4, 0.8, 2.4],
                vec![GpuId(0)],
                4,
                1.2,
            ),
        ];
        for (scores, busy, demand, l_across) in scenarios {
            let profile =
                VariabilityProfile::from_raw(vec![scores.clone(), scores.clone(), scores]);
            let topo = ClusterTopology::new(2, 4);
            let mut state = ClusterState::new(topo);
            state.allocate(&busy);
            let locality = LocalityModel::uniform(l_across);
            let mut pal = PalPlacement::new(&profile);
            let ctx = ctx_with(&profile, &locality);
            let alloc = pal.place(&req(0, JobClass::A, demand), &ctx, &state);

            let product_of = |gpus: &[GpuId]| {
                let l = locality.penalty(&topo, "resnet50", gpus);
                let v = gpus
                    .iter()
                    .map(|&g| pal.table().score(JobClass::A, g))
                    .fold(0.0f64, f64::max);
                l * v
            };
            let achieved = product_of(&alloc);

            // Exhaustive minimum over all C(free, demand) subsets.
            let free = state.free_gpus();
            let mut best = f64::INFINITY;
            let mut combo = vec![0usize; demand];
            fn recurse(
                free: &[GpuId],
                combo: &mut Vec<usize>,
                depth: usize,
                start: usize,
                best: &mut f64,
                product_of: &dyn Fn(&[GpuId]) -> f64,
            ) {
                if depth == combo.len() {
                    let gpus: Vec<GpuId> = combo.iter().map(|&i| free[i]).collect();
                    let p = product_of(&gpus);
                    if p < *best {
                        *best = p;
                    }
                    return;
                }
                for i in start..free.len() {
                    combo[depth] = i;
                    recurse(free, combo, depth + 1, i + 1, best, product_of);
                }
            }
            recurse(&free, &mut combo, 0, 0, &mut best, &product_of);
            assert!(
                (achieved - best).abs() < 1e-9,
                "PAL product {achieved} != exhaustive min {best} \
                 (demand {demand}, l_across {l_across})"
            );
        }
    }
}
