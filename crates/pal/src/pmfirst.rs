//! The PM-First placement policy (Section III-B, Algorithm 1, Figure 4).
//!
//! PM-First "gives PM-induced variability first-order precedence": within
//! the schedulable prefix, class A jobs pick GPUs first (placement
//! priority), and each job greedily takes the free GPUs with the best
//! (lowest) binned PM-scores for its class.
//!
//! Selection is allocation-free: next to its score table the policy keeps
//! lazily built per-class orderings of *all* GPUs by ascending binned
//! score ([`ClassOrders`]) — static while the table is static — and each
//! `place_into` just walks the job's class ordering, skipping busy GPUs.

use crate::pm_scores::PmScoreTable;
use pal_cluster::{ClassOrders, ClusterState, GpuId, JobClass, VariabilityProfile};
use pal_kmeans::ScoreBinning;
use pal_sim::{Allocation, PlacementCtx, PlacementPolicy, PlacementRequest};
use std::sync::Arc;

/// PM-First placement.
///
/// Holds its PM-score table behind an `Arc` so sweeps can share one table
/// across many instances (see [`crate::PmTableCache`]).
#[derive(Debug, Clone)]
pub struct PmFirstPlacement {
    table: Arc<PmScoreTable>,
    orders: ClassOrders,
}

impl PmFirstPlacement {
    /// Build from a variability profile using the paper's default binning.
    pub fn new(profile: &VariabilityProfile) -> Self {
        PmFirstPlacement::from_shared(Arc::new(PmScoreTable::build_default(profile)))
    }

    /// Build with a custom binning configuration (K-sweep ablations).
    pub fn with_binning(profile: &VariabilityProfile, binning: &ScoreBinning) -> Self {
        PmFirstPlacement::from_shared(Arc::new(PmScoreTable::build(profile, binning)))
    }

    /// Build around an already-constructed shared table — the sweep path:
    /// a [`crate::PmTableCache`] builds each distinct table once and every
    /// campaign cell's policy borrows it by reference count.
    pub fn from_shared(table: Arc<PmScoreTable>) -> Self {
        let orders = ClassOrders::new(table.num_classes());
        PmFirstPlacement { table, orders }
    }

    /// The precomputed PM-score table.
    pub fn table(&self) -> &PmScoreTable {
        &self.table
    }

    /// The shared handle to the PM-score table.
    pub fn shared_table(&self) -> &Arc<PmScoreTable> {
        &self.table
    }
}

/// Stable class-priority reorder of the schedulable prefix, written into
/// `out`: class A first, preserving scheduling order within a class
/// (Figure 4's "sort by class, up to cluster size").
pub(crate) fn class_priority_order_into(requests: &[PlacementRequest], out: &mut Vec<usize>) {
    out.clear();
    out.extend(0..requests.len());
    // The index tie-breaker makes the key a strict total order, so the
    // allocation-free unstable sort reproduces the stable partition.
    out.sort_unstable_by_key(|&i| (requests[i].class, i));
}

/// Build (if stale) the class's all-GPU ordering by ascending binned
/// PM-score, ties by GPU id — the walk order of `GET_PMFIRST_GPUS`.
pub(crate) fn ensure_class_order(table: &PmScoreTable, orders: &mut ClassOrders, class: JobClass) {
    orders.ensure(class.0, table.num_gpus(), |g| table.score(class, g));
}

/// Greedy best-scores-first selection (`GET_PMFIRST_GPUS`): walk the
/// class's score ordering and take the first `demand` free GPUs.
/// Equivalent to sorting the free list by (binned score, GPU id) and
/// truncating — without the per-call sort or allocation.
pub(crate) fn pmfirst_into(
    order: &[GpuId],
    demand: usize,
    state: &ClusterState,
    out: &mut Allocation,
) {
    out.clear();
    for &g in order {
        if state.is_free(g) {
            out.push(g);
            if out.len() == demand {
                return;
            }
        }
    }
}

impl PlacementPolicy for PmFirstPlacement {
    fn name(&self) -> &str {
        "PM-First"
    }

    fn wants_observations(&self) -> bool {
        false // offline scores; inherits the no-op `observe`
    }

    fn placement_order_into(
        &self,
        requests: &[PlacementRequest],
        _ctx: &PlacementCtx,
        out: &mut Vec<usize>,
    ) {
        class_priority_order_into(requests, out);
    }

    fn place_into(
        &mut self,
        request: &PlacementRequest,
        _ctx: &PlacementCtx,
        state: &ClusterState,
        out: &mut Allocation,
    ) {
        ensure_class_order(&self.table, &mut self.orders, request.class);
        pmfirst_into(
            self.orders.get(request.class.0),
            request.gpu_demand,
            state,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pal_cluster::{ClusterTopology, LocalityModel};
    use pal_trace::JobId;

    /// 2 nodes × 4 GPUs; class-A scores make GPUs 4..8 (node 1) the fast
    /// ones; class-C scores are flat.
    fn fixture() -> (VariabilityProfile, ClusterState, LocalityModel) {
        let class_a = vec![1.4, 1.4, 1.5, 1.5, 0.9, 0.9, 1.0, 1.0];
        let class_b = vec![1.1, 1.1, 1.2, 1.2, 0.95, 0.95, 1.0, 1.0];
        let class_c = vec![1.0; 8];
        let profile = VariabilityProfile::from_raw(vec![class_a, class_b, class_c]);
        let state = ClusterState::new(ClusterTopology::new(2, 4));
        (profile, state, LocalityModel::uniform(1.5))
    }

    fn req(job: u32, class: JobClass, demand: usize) -> PlacementRequest {
        PlacementRequest {
            job: JobId(job),
            model: "resnet50",
            class,
            gpu_demand: demand,
        }
    }

    #[test]
    fn picks_best_scoring_gpus() {
        let (profile, state, locality) = fixture();
        let mut p = PmFirstPlacement::new(&profile);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        let alloc = p.place(&req(0, JobClass::A, 2), &ctx, &state);
        // The two best class-A GPUs are 4 and 5 (score 0.9).
        assert_eq!(alloc, vec![GpuId(4), GpuId(5)]);
    }

    #[test]
    fn ignores_locality_entirely() {
        // Classic PM-First behaviour: takes the 4 best GPUs even though
        // they straddle nodes.
        let class_a = vec![0.9, 1.5, 1.5, 1.5, 0.9, 1.5, 1.5, 0.95];
        let profile = VariabilityProfile::from_raw(vec![class_a.clone(), class_a.clone(), class_a]);
        let state = ClusterState::new(ClusterTopology::new(2, 4));
        let locality = LocalityModel::uniform(3.0);
        let mut p = PmFirstPlacement::new(&profile);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        let alloc = p.place(&req(0, JobClass::A, 3), &ctx, &state);
        assert!(state.topology().spans_nodes(&alloc));
        // Best three by binned score: 0, 4 (0.9) then 7 (0.95).
        assert_eq!(alloc, vec![GpuId(0), GpuId(4), GpuId(7)]);
    }

    #[test]
    fn respects_busy_gpus() {
        let (profile, mut state, locality) = fixture();
        state.allocate(&[GpuId(4), GpuId(5)]);
        let mut p = PmFirstPlacement::new(&profile);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        let alloc = p.place(&req(0, JobClass::A, 2), &ctx, &state);
        // Next best after 4,5: 6 and 7 (score 1.0).
        assert_eq!(alloc, vec![GpuId(6), GpuId(7)]);
    }

    #[test]
    fn placement_order_sorts_by_class_stably() {
        let (profile, state, locality) = fixture();
        let p = PmFirstPlacement::new(&profile);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        let reqs = vec![
            req(0, JobClass::B, 1),
            req(1, JobClass::A, 1),
            req(2, JobClass::C, 1),
            req(3, JobClass::A, 1),
            req(4, JobClass::B, 1),
        ];
        // A jobs first in original order, then B, then C (Figure 4).
        assert_eq!(p.placement_order(&reqs, &ctx), vec![1, 3, 0, 4, 2]);
    }

    #[test]
    fn class_c_sees_flat_scores_so_order_is_by_id() {
        let (profile, state, locality) = fixture();
        let mut p = PmFirstPlacement::new(&profile);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        let alloc = p.place(&req(0, JobClass::C, 3), &ctx, &state);
        assert_eq!(alloc, vec![GpuId(0), GpuId(1), GpuId(2)]);
    }

    #[test]
    fn demand_equal_to_free_takes_everything() {
        let (profile, state, locality) = fixture();
        let mut p = PmFirstPlacement::new(&profile);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        let alloc = p.place(&req(0, JobClass::A, 8), &ctx, &state);
        assert_eq!(alloc.len(), 8);
    }
}
