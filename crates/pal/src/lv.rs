//! The L×V matrix (Section III-C.1).
//!
//! Rows are locality levels (`L_within = 1.0`, `L_across`), columns the
//! class's distinct binned PM-score levels. Each entry's value is the
//! LV-product — the combined slowdown a job would suffer from that
//! (locality, variability) combination. PAL traverses entries in ascending
//! LV-product order, taking the first that admits a feasible allocation.
//!
//! The matrix is tiny: its size is bounded by (#locality levels) ×
//! (#PM-score bins), independent of cluster size — that is what makes PAL
//! cheap at scale.

use serde::{Deserialize, Serialize};

/// Which locality row an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalityLevel {
    /// Allocation packed within one node.
    Within,
    /// Allocation spanning nodes.
    Across,
}

/// One L×V matrix entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LvEntry {
    /// The locality row.
    pub locality: LocalityLevel,
    /// The locality multiplier of that row.
    pub l_value: f64,
    /// The PM-score column value (bin centroid or outlier score).
    pub v_value: f64,
    /// `l_value × v_value` — the combined slowdown to minimize.
    pub product: f64,
}

/// A class-specific L×V matrix with a precomputed traversal order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LvMatrix {
    entries: Vec<LvEntry>,
}

impl LvMatrix {
    /// Build from a class's sorted PM-score levels and the two locality
    /// multipliers. Entries are sorted by ascending LV-product at
    /// construction; ties resolve Within before Across (packing is free to
    /// prefer when products are equal), then lower V first.
    pub fn new(levels: &[f64], l_within: f64, l_across: f64) -> Self {
        let mut m = LvMatrix {
            entries: Vec::with_capacity(levels.len() * 2),
        };
        m.rebuild(levels, l_within, l_across);
        m
    }

    /// Rebuild this matrix in place for new levels/multipliers, reusing
    /// the entry buffer — the allocation-free path PAL uses to keep a
    /// cached per-class matrix current inside `place_into`.
    ///
    /// The `(product, locality-rank, v)` sort key is a strict total order
    /// (levels are distinct, so equal products within a row are
    /// impossible and equal products across rows pin identical `v`), so
    /// the allocation-free unstable sort is deterministic.
    pub fn rebuild(&mut self, levels: &[f64], l_within: f64, l_across: f64) {
        assert!(!levels.is_empty(), "L×V matrix needs at least one V level");
        assert!(
            l_within > 0.0 && l_across >= l_within,
            "bad locality values"
        );
        self.entries.clear();
        for &(locality, l) in &[
            (LocalityLevel::Within, l_within),
            (LocalityLevel::Across, l_across),
        ] {
            for &v in levels {
                self.entries.push(LvEntry {
                    locality,
                    l_value: l,
                    v_value: v,
                    product: l * v,
                });
            }
        }
        self.entries.sort_unstable_by(|a, b| {
            a.product
                .partial_cmp(&b.product)
                .expect("NaN LV product")
                .then_with(|| {
                    let rank = |e: &LvEntry| match e.locality {
                        LocalityLevel::Within => 0,
                        LocalityLevel::Across => 1,
                    };
                    rank(a).cmp(&rank(b))
                })
                .then(a.v_value.partial_cmp(&b.v_value).expect("NaN V"))
        });
    }

    /// Entries in ascending LV-product (traversal) order.
    pub fn traverse(&self) -> impl Iterator<Item = &LvEntry> {
        self.entries.iter()
    }

    /// Number of entries (2 × levels).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the matrix is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Section III-C.1: V = [0.89, 0.94, 1.06,
    /// 2.55], L_across = 1.5.
    fn paper_matrix() -> LvMatrix {
        LvMatrix::new(&[0.89, 0.94, 1.06, 2.55], 1.0, 1.5)
    }

    #[test]
    fn paper_traversal_order() {
        let m = paper_matrix();
        let order: Vec<(f64, f64)> = m.traverse().map(|e| (e.l_value, e.product)).collect();
        // (1, 0.89) -> (1, 0.94) -> (1, 1.06) -> (1.5, 1.335) -> (1.5, 1.41)
        // -> (1.5, 1.59) -> (1, 2.55) -> (1.5, 3.825)
        // NOTE: the paper's prose skips the (1, 2.55) entry in its example
        // listing, but by the min-LV-product rule a packed allocation on the
        // 2.55 bin (product 2.55) precedes the spread 2.55 allocation
        // (product 3.825) — our traversal is strictly product-ordered.
        let expected_products = [0.89, 0.94, 1.06, 1.335, 1.41, 1.59, 2.55, 3.825];
        for (i, &(_, p)) in order.iter().enumerate() {
            assert!(
                (p - expected_products[i]).abs() < 1e-9,
                "entry {i}: product {p}, expected {}",
                expected_products[i]
            );
        }
    }

    #[test]
    fn within_entries_precede_their_across_twins() {
        let m = paper_matrix();
        let entries: Vec<&LvEntry> = m.traverse().collect();
        for v in [0.89, 0.94, 1.06, 2.55] {
            let wi = entries
                .iter()
                .position(|e| e.locality == LocalityLevel::Within && (e.v_value - v).abs() < 1e-12)
                .unwrap();
            let ai = entries
                .iter()
                .position(|e| e.locality == LocalityLevel::Across && (e.v_value - v).abs() < 1e-12)
                .unwrap();
            assert!(wi < ai, "within({v}) must precede across({v})");
        }
    }

    #[test]
    fn products_nondecreasing() {
        let m = paper_matrix();
        let prods: Vec<f64> = m.traverse().map(|e| e.product).collect();
        for w in prods.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn locality_one_ties_resolve_within_first() {
        // With L_across = 1.0 every (within, v) ties with (across, v); the
        // within entry must come first so PAL still prefers packing.
        let m = LvMatrix::new(&[1.0, 1.2], 1.0, 1.0);
        let first_two: Vec<LocalityLevel> = m.traverse().take(2).map(|e| e.locality).collect();
        assert_eq!(first_two[0], LocalityLevel::Within);
        assert_eq!(first_two[1], LocalityLevel::Across);
    }

    #[test]
    fn spread_allocation_beats_terrible_bin() {
        // The paper's point: (1.5, 1.59) precedes packed (1.0, 2.55).
        let m = paper_matrix();
        let prods: Vec<(f64, f64)> = m.traverse().map(|e| (e.l_value, e.v_value)).collect();
        let spread_idx = prods
            .iter()
            .position(|&(l, v)| l == 1.5 && (v - 1.06).abs() < 1e-12)
            .unwrap();
        let packed_bad_idx = prods
            .iter()
            .position(|&(l, v)| l == 1.0 && (v - 2.55).abs() < 1e-12)
            .unwrap();
        assert!(spread_idx < packed_bad_idx);
    }

    #[test]
    fn size_is_twice_levels() {
        assert_eq!(paper_matrix().len(), 8);
    }

    #[test]
    #[should_panic(expected = "bad locality values")]
    fn across_below_within_panics() {
        LvMatrix::new(&[1.0], 1.0, 0.9);
    }
}
