//! Property-based tests for pal-kmeans: clustering and binning invariants
//! on arbitrary inputs.

use pal_kmeans::{mean_silhouette, silhouette_samples, KMeans, ScoreBinning};
use proptest::prelude::*;

fn points_1d() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(0.1f64..10.0, 4..80)
        .prop_map(|v| v.into_iter().map(|x| vec![x]).collect())
}

fn profile_like() -> impl Strategy<Value = Vec<f64>> {
    // Normalized-performance-shaped values: mass near 1, occasional tail.
    proptest::collection::vec(
        prop_oneof![
            8 => 0.85f64..1.15,
            2 => 1.15f64..3.5,
        ],
        4..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_assignments_are_nearest_centroid(pts in points_1d(), k in 1usize..5) {
        prop_assume!(k <= pts.len());
        let r = KMeans::new(k, 7).fit(&pts);
        for (p, &a) in pts.iter().zip(&r.assignments) {
            let d_assigned = (p[0] - r.centroids[a][0]).powi(2);
            for c in &r.centroids {
                prop_assert!(d_assigned <= (p[0] - c[0]).powi(2) + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_inertia_matches_assignments(pts in points_1d(), k in 1usize..5) {
        prop_assume!(k <= pts.len());
        let r = KMeans::new(k, 3).fit(&pts);
        let manual: f64 = pts
            .iter()
            .zip(&r.assignments)
            .map(|(p, &a)| (p[0] - r.centroids[a][0]).powi(2))
            .sum();
        prop_assert!((r.inertia - manual).abs() < 1e-6 * (1.0 + manual));
    }

    #[test]
    fn kmeans_centroids_within_data_hull(pts in points_1d(), k in 1usize..5) {
        prop_assume!(k <= pts.len());
        let r = KMeans::new(k, 11).fit(&pts);
        let lo = pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p[0]).fold(f64::NEG_INFINITY, f64::max);
        for c in &r.centroids {
            prop_assert!(c[0] >= lo - 1e-9 && c[0] <= hi + 1e-9);
        }
    }

    #[test]
    fn silhouette_values_in_range(pts in points_1d(), k in 2usize..4) {
        prop_assume!(k <= pts.len());
        let r = KMeans::new(k, 5).fit(&pts);
        let k_used = r.assignments.iter().copied().max().unwrap() + 1;
        prop_assume!(k_used >= 2);
        for s in silhouette_samples(&pts, &r.assignments) {
            prop_assert!((-1.0..=1.0).contains(&s));
        }
        let m = mean_silhouette(&pts, &r.assignments);
        prop_assert!((-1.0..=1.0).contains(&m));
    }

    #[test]
    fn binning_covers_every_input(values in profile_like()) {
        let b = ScoreBinning::default().bin(&values);
        prop_assert_eq!(b.scores.len(), values.len());
        prop_assert_eq!(b.level_of.len(), values.len());
        for (i, &s) in b.scores.iter().enumerate() {
            prop_assert!((b.levels[b.level_of[i]] - s).abs() < 1e-9);
        }
        // Levels sorted strictly ascending.
        for w in b.levels.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn binning_k_within_configured_range(values in profile_like()) {
        let cfg = ScoreBinning::default();
        let b = cfg.bin(&values);
        prop_assert!(b.k >= 1 && b.k <= cfg.k_max);
    }

    #[test]
    fn binned_scores_within_data_range(values in profile_like()) {
        let b = ScoreBinning::default().bin(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &s in &b.scores {
            prop_assert!(s >= lo - 1e-9 && s <= hi + 1e-9);
        }
    }

    #[test]
    fn outliers_keep_exact_values(values in profile_like()) {
        let b = ScoreBinning::default().bin(&values);
        for &i in &b.outlier_indices {
            prop_assert_eq!(b.scores[i], values[i]);
        }
    }

    #[test]
    fn binning_preserves_order_of_magnitude(values in profile_like()) {
        // Binning must not invert orderings badly: if x is much larger than
        // y (different bins apart), the binned score of x must be >= that
        // of y.
        let b = ScoreBinning::default().bin(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] >= values[j] {
                    // Binned scores may tie (same bin) but not invert by
                    // more than a bin width; we check the weak property.
                    prop_assert!(
                        b.scores[i] >= b.scores[j] - 1e-9
                            || b.level_of[i] >= b.level_of[j]
                    );
                }
            }
        }
    }

    #[test]
    fn binning_deterministic(values in profile_like()) {
        let a = ScoreBinning::default().bin(&values);
        let b = ScoreBinning::default().bin(&values);
        prop_assert_eq!(a, b);
    }
}
