//! Lloyd's K-Means with k-means++ seeding.
//!
//! Deterministic given a seed; handles empty clusters by re-seeding them on
//! the farthest point from its centroid (a standard, stable repair).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration and entry point for K-Means clustering.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations before giving up on convergence.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement (squared distance).
    pub tol: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Independent restarts; the run with the lowest inertia wins
    /// (scikit-learn's `n_init`, guarding against bad seedings).
    pub n_init: usize,
}

/// Result of a K-Means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster centroids, `k` rows of dimension `d`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeans {
    /// K-Means with sensible defaults (`max_iters = 200`, `tol = 1e-10`,
    /// `n_init = 10`).
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iters: 200,
            tol: 1e-10,
            seed,
            n_init: 10,
        }
    }

    /// Cluster `points` into `k` groups, keeping the best of `n_init`
    /// restarts by inertia.
    ///
    /// Panics if `points` is empty, `k == 0`, `k > points.len()`, or the
    /// points have inconsistent dimensions.
    pub fn fit(&self, points: &[Vec<f64>]) -> KMeansResult {
        assert!(self.n_init >= 1, "need at least one restart");
        let mut best: Option<KMeansResult> = None;
        for i in 0..self.n_init {
            let r = self.fit_once(points, self.seed.wrapping_add(i as u64 * 0x9E37_79B9));
            if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
                best = Some(r);
            }
        }
        best.expect("n_init >= 1")
    }

    /// One Lloyd run from a single k-means++ seeding.
    fn fit_once(&self, points: &[Vec<f64>], seed: u64) -> KMeansResult {
        assert!(!points.is_empty(), "kmeans on empty input");
        assert!(self.k > 0, "k must be positive");
        assert!(
            self.k <= points.len(),
            "k = {} exceeds point count {}",
            self.k,
            points.len()
        );
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "inconsistent point dimensions"
        );

        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = kmeanspp_init(points, self.k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest(p, &centroids).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            let mut movement = 0.0;
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Empty cluster: re-seed on the point farthest from its
                    // current centroid.
                    let (far_idx, _) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, sq_dist(p, &centroids[assignments[i]])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
                        .expect("non-empty points");
                    movement += sq_dist(&centroids[c], &points[far_idx]);
                    centroids[c] = points[far_idx].clone();
                    assignments[far_idx] = c;
                    continue;
                }
                let new_c: Vec<f64> = sums[c].iter().map(|&s| s / counts[c] as f64).collect();
                movement += sq_dist(&centroids[c], &new_c);
                centroids[c] = new_c;
            }
            if movement <= self.tol {
                break;
            }
        }

        // Final assignment pass so assignments match the final centroids.
        let mut inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (a, d) = nearest(p, &centroids);
            assignments[i] = a;
            inertia += d;
        }

        KMeansResult {
            centroids,
            assignments,
            inertia,
            iterations,
        }
    }
}

/// Squared Euclidean distance.
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
}

/// Index and squared distance of the nearest centroid.
fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[idx].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + (i % 5) as f64 * 0.01, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let r = KMeans::new(2, 42).fit(&two_blobs());
        // All points near (0,0) share a label, all near (10,10) another.
        let label0 = r.assignments[0];
        for (i, &a) in r.assignments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, label0);
            } else {
                assert_ne!(a, label0);
            }
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let r = KMeans::new(3, 1).fit(&pts);
        assert!(r.inertia < 1e-20);
    }

    #[test]
    fn k1_centroid_is_mean() {
        let pts = vec![vec![1.0, 0.0], vec![3.0, 4.0]];
        let r = KMeans::new(1, 7).fit(&pts);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
        assert!((r.centroids[0][1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let pts = two_blobs();
        let a = KMeans::new(3, 99).fit(&pts);
        let b = KMeans::new(3, 99).fit(&pts);
        assert_eq!(a, b);
    }

    #[test]
    fn inertia_non_increasing_in_k() {
        let pts: Vec<Vec<f64>> = (0..50).map(|i| vec![(i * i % 37) as f64]).collect();
        let mut last = f64::INFINITY;
        for k in 1..=6 {
            // Use best of a few seeds to smooth seeding luck.
            let best = (0..5)
                .map(|s| KMeans::new(k, s).fit(&pts).inertia)
                .fold(f64::INFINITY, f64::min);
            assert!(
                best <= last + 1e-9,
                "inertia increased from {last} to {best} at k={k}"
            );
            last = best;
        }
    }

    #[test]
    fn identical_points_dont_crash() {
        let pts = vec![vec![5.0]; 10];
        let r = KMeans::new(3, 0).fit(&pts);
        assert_eq!(r.assignments.len(), 10);
        assert!(r.inertia < 1e-20);
    }

    #[test]
    #[should_panic(expected = "exceeds point count")]
    fn k_too_large_panics() {
        KMeans::new(5, 0).fit(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic(expected = "inconsistent point dimensions")]
    fn mixed_dims_panic() {
        KMeans::new(1, 0).fit(&[vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    fn assignments_point_to_nearest_centroid() {
        let pts = two_blobs();
        let r = KMeans::new(2, 3).fit(&pts);
        for (p, &a) in pts.iter().zip(&r.assignments) {
            let d_assigned = sq_dist(p, &r.centroids[a]);
            for c in &r.centroids {
                assert!(d_assigned <= sq_dist(p, c) + 1e-12);
            }
        }
    }
}
