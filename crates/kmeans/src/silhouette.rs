//! Silhouette analysis (Rousseeuw 1987), the paper's criterion for choosing
//! the number of PM-score bins K: "We select the K value that gives
//! silhouette scores as close to +1 as possible for all bins so that we get
//! distinct and relatively well-separated bins" (Section III-B).

use crate::kmeans::sq_dist;

/// Per-sample silhouette coefficients `s(i) = (b(i) - a(i)) / max(a, b)`.
///
/// `a(i)` is the mean distance to other points in the same cluster and
/// `b(i)` the smallest mean distance to points of any other cluster.
/// Singleton clusters get `s(i) = 0` by convention (scikit-learn's choice).
///
/// Panics if lengths mismatch or fewer than 2 clusters are present.
pub fn silhouette_samples(points: &[Vec<f64>], assignments: &[usize]) -> Vec<f64> {
    assert_eq!(points.len(), assignments.len(), "length mismatch");
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    assert!(k >= 2, "silhouette needs at least 2 clusters");
    let n = points.len();
    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a] += 1;
    }

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let ci = assignments[i];
        if cluster_sizes[ci] <= 1 {
            out.push(0.0);
            continue;
        }
        // Mean distance from i to every cluster.
        let mut dist_sums = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            dist_sums[assignments[j]] += sq_dist(&points[i], &points[j]).sqrt();
        }
        let a = dist_sums[ci] / (cluster_sizes[ci] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != ci && cluster_sizes[c] > 0)
            .map(|c| dist_sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        out.push(if denom == 0.0 { 0.0 } else { (b - a) / denom });
    }
    out
}

/// Mean silhouette over all samples.
pub fn mean_silhouette(points: &[Vec<f64>], assignments: &[usize]) -> f64 {
    let s = silhouette_samples(points, assignments);
    s.iter().sum::<f64>() / s.len() as f64
}

/// The smallest per-cluster mean silhouette.
///
/// The paper wants scores "as close to +1 as possible **for all bins**", so
/// we score a K by its worst bin, not its average.
pub fn min_cluster_silhouette(points: &[Vec<f64>], assignments: &[usize]) -> f64 {
    let s = silhouette_samples(points, assignments);
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut sums = vec![0.0f64; k];
    let mut counts = vec![0usize; k];
    for (&a, &si) in assignments.iter().zip(&s) {
        sums[a] += si;
        counts[a] += 1;
    }
    (0..k)
        .filter(|&c| counts[c] > 0)
        .map(|c| sums[c] / counts[c] as f64)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![center + i as f64 * 0.01]).collect()
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let mut pts = blob(0.0, 10);
        pts.extend(blob(100.0, 10));
        let assignments: Vec<usize> = (0..20).map(|i| if i < 10 { 0 } else { 1 }).collect();
        let m = mean_silhouette(&pts, &assignments);
        assert!(m > 0.99, "expected near-1 silhouette, got {m}");
    }

    #[test]
    fn wrong_assignment_scores_negative() {
        // Two tight blobs but swap one point's label: it should be negative.
        let mut pts = blob(0.0, 5);
        pts.extend(blob(100.0, 5));
        let mut assignments: Vec<usize> = (0..10).map(|i| if i < 5 { 0 } else { 1 }).collect();
        assignments[0] = 1; // point at 0.0 labeled with the far cluster
        let s = silhouette_samples(&pts, &assignments);
        assert!(
            s[0] < 0.0,
            "mislabeled point should be negative, got {}",
            s[0]
        );
    }

    #[test]
    fn singleton_cluster_is_zero() {
        let pts = vec![vec![0.0], vec![10.0], vec![10.1]];
        let assignments = vec![0, 1, 1];
        let s = silhouette_samples(&pts, &assignments);
        assert_eq!(s[0], 0.0);
    }

    #[test]
    fn min_cluster_below_mean_for_unbalanced_quality() {
        // Cluster 0 tight, cluster 1 loose and near cluster 0.
        let mut pts = blob(0.0, 8);
        pts.extend(vec![vec![1.0], vec![5.0], vec![9.0], vec![2.0]]);
        let assignments: Vec<usize> = (0..8).map(|_| 0).chain((0..4).map(|_| 1)).collect();
        let mean = mean_silhouette(&pts, &assignments);
        let min = min_cluster_silhouette(&pts, &assignments);
        assert!(min <= mean + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 clusters")]
    fn single_cluster_panics() {
        silhouette_samples(&[vec![1.0], vec![2.0]], &[0, 0]);
    }

    #[test]
    fn values_in_range() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i * 7 % 13) as f64, (i % 5) as f64])
            .collect();
        let assignments: Vec<usize> = (0..30).map(|i| i % 3).collect();
        for s in silhouette_samples(&pts, &assignments) {
            assert!((-1.0..=1.0).contains(&s), "silhouette {s} out of range");
        }
    }
}
