//! 1-D PM-score binning (Section III-B, Figure 5).
//!
//! Pipeline, exactly as the paper describes:
//!
//! 1. Separate extreme outliers (more than 3σ from the mean) — they distort
//!    silhouette coefficients.
//! 2. Sweep K from 2 to 11 on the inliers, selecting the K whose **worst
//!    per-bin** mean silhouette is highest ("as close to +1 as possible for
//!    all bins").
//! 3. Every inlier GPU's PM-score becomes its bin centroid; each outlier
//!    keeps its own exact normalized performance as its PM-score ("these
//!    extreme outliers are assigned their own PM-score equal to the GPU's
//!    normalized performance").

use crate::kmeans::KMeans;
use crate::silhouette::min_cluster_silhouette;
use serde::{Deserialize, Serialize};

/// Configuration for the PM-score binning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreBinning {
    /// Smallest K to try (paper: 2).
    pub k_min: usize,
    /// Largest K to try (paper: 11).
    pub k_max: usize,
    /// Outlier threshold in standard deviations (paper: 3).
    pub outlier_sigma: f64,
    /// Seed for K-Means initialization.
    pub seed: u64,
}

impl Default for ScoreBinning {
    fn default() -> Self {
        ScoreBinning {
            k_min: 2,
            k_max: 11,
            outlier_sigma: 3.0,
            seed: 0xBA1_5C0_7E5,
        }
    }
}

/// Result of binning one class's variability profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedScores {
    /// Chosen number of inlier bins.
    pub k: usize,
    /// The silhouette score achieved by the chosen K (worst-bin criterion).
    pub silhouette: f64,
    /// Per-input PM-score: bin centroid for inliers, raw value for outliers.
    pub scores: Vec<f64>,
    /// Sorted, deduplicated distinct PM-score levels (bin centroids plus
    /// outlier values) — the columns of the L×V matrix.
    pub levels: Vec<f64>,
    /// For each input, the index into `levels` of its PM-score.
    pub level_of: Vec<usize>,
    /// Indices of the inputs that were treated as >3σ outliers.
    pub outlier_indices: Vec<usize>,
}

impl BinnedScores {
    /// Number of distinct PM-score levels (inlier bins + outlier values).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }
}

impl ScoreBinning {
    /// Bin a 1-D variability profile (`values[i]` = GPU *i*'s iteration time
    /// normalized to the cluster median).
    ///
    /// Panics on empty input. With fewer inliers than `k_min` the pipeline
    /// degrades gracefully: every value becomes its own level.
    pub fn bin(&self, values: &[f64]) -> BinnedScores {
        assert!(!values.is_empty(), "binning an empty profile");
        assert!(self.k_min >= 2 && self.k_max >= self.k_min, "bad K range");

        // 1. Outlier separation.
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        let mut inlier_idx = Vec::with_capacity(n);
        let mut outlier_idx = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if sd > 0.0 && (v - mean).abs() > self.outlier_sigma * sd {
                outlier_idx.push(i);
            } else {
                inlier_idx.push(i);
            }
        }
        let inliers: Vec<Vec<f64>> = inlier_idx.iter().map(|&i| vec![values[i]]).collect();

        // 2. K sweep with worst-bin silhouette selection.
        let mut scores = vec![0.0f64; n];
        let chosen_k;
        let chosen_sil;
        let distinct_inliers = {
            let mut v: Vec<f64> = inliers.iter().map(|p| p[0]).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
            v.dedup();
            v.len()
        };

        if distinct_inliers >= 2 {
            let k_hi = self.k_max.min(distinct_inliers);
            /// Best (K, silhouette, assignments, centroids) found so far.
            type BestBinning = (usize, f64, Vec<usize>, Vec<Vec<f64>>);
            let mut best: Option<BestBinning> = None;
            for k in self.k_min..=k_hi.max(self.k_min) {
                if k > inliers.len() {
                    break;
                }
                let r = KMeans::new(k, self.seed ^ k as u64).fit(&inliers);
                let sil = min_cluster_silhouette(&inliers, &r.assignments);
                let better = match &best {
                    None => true,
                    Some((_, best_sil, _, _)) => sil > *best_sil + 1e-12,
                };
                if better {
                    best = Some((k, sil, r.assignments, r.centroids));
                }
            }
            let (k, sil, assignments, centroids) =
                best.expect("at least one K tried when >=2 distinct inliers");
            chosen_k = k;
            chosen_sil = sil;
            for (pos, &i) in inlier_idx.iter().enumerate() {
                scores[i] = centroids[assignments[pos]][0];
            }
        } else {
            // All inliers identical (or a single inlier): one trivial bin.
            for &i in &inlier_idx {
                scores[i] = values[i];
            }
            chosen_k = 1;
            chosen_sil = 1.0;
        }

        // 3. Outliers keep their exact normalized performance.
        for &i in &outlier_idx {
            scores[i] = values[i];
        }

        // Distinct levels, sorted ascending (best PM-score first).
        let mut levels: Vec<f64> = scores.clone();
        levels.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
        levels.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let level_of = scores
            .iter()
            .map(|&s| {
                levels
                    .iter()
                    .position(|&l| (l - s).abs() < 1e-12)
                    .expect("score must be a level")
            })
            .collect();

        BinnedScores {
            k: chosen_k,
            silhouette: chosen_sil,
            scores,
            levels,
            level_of,
            outlier_indices: outlier_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profile shaped like Figure 5: a mass near 1.0, a second mode, and an
    /// extreme outlier beyond 2.5x.
    fn fig5_like_profile() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..60 {
            v.push(0.97 + (i % 7) as f64 * 0.005); // tight cluster ~0.97-1.0
        }
        for i in 0..40 {
            v.push(1.10 + (i % 5) as f64 * 0.008); // second cluster ~1.10-1.14
        }
        for i in 0..20 {
            v.push(1.30 + (i % 4) as f64 * 0.01); // third cluster
        }
        v.push(3.4); // extreme outlier (>3 sigma)
        v.push(3.5);
        v
    }

    #[test]
    fn outliers_are_separated_and_keep_exact_scores() {
        let profile = fig5_like_profile();
        let b = ScoreBinning::default().bin(&profile);
        assert!(b.outlier_indices.contains(&(profile.len() - 1)));
        assert!(b.outlier_indices.contains(&(profile.len() - 2)));
        assert_eq!(b.scores[profile.len() - 1], 3.5);
        assert_eq!(b.scores[profile.len() - 2], 3.4);
    }

    #[test]
    fn inliers_get_centroid_scores() {
        let profile = fig5_like_profile();
        let b = ScoreBinning::default().bin(&profile);
        // Every inlier's score must be one of at most k distinct centroids.
        let mut inlier_scores: Vec<f64> = (0..profile.len())
            .filter(|i| !b.outlier_indices.contains(i))
            .map(|i| b.scores[i])
            .collect();
        inlier_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        inlier_scores.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert!(inlier_scores.len() <= b.k);
    }

    #[test]
    fn levels_are_sorted_and_cover_scores() {
        let b = ScoreBinning::default().bin(&fig5_like_profile());
        for w in b.levels.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (i, &s) in b.scores.iter().enumerate() {
            assert!((b.levels[b.level_of[i]] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn three_well_separated_modes_find_k3() {
        let mut v = Vec::new();
        for _ in 0..30 {
            v.push(1.0);
            v.push(2.0);
            v.push(3.0);
        }
        // Tiny jitter so points are distinct but modes are tight.
        for (i, x) in v.iter_mut().enumerate() {
            *x += (i % 3) as f64 * 1e-4;
        }
        let b = ScoreBinning::default().bin(&v);
        assert_eq!(b.k, 3, "expected K=3 for three tight modes, got {}", b.k);
        assert!(b.silhouette > 0.9);
    }

    #[test]
    fn constant_profile_degrades_gracefully() {
        let b = ScoreBinning::default().bin(&[1.0; 50]);
        assert_eq!(b.levels, vec![1.0]);
        assert!(b.outlier_indices.is_empty());
        assert!(b.scores.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn single_value_profile() {
        let b = ScoreBinning::default().bin(&[1.5]);
        assert_eq!(b.levels, vec![1.5]);
        assert_eq!(b.level_of, vec![0]);
    }

    #[test]
    fn memory_bound_low_variability_profile() {
        // Class C (PageRank-like): ~1% spread, no outliers. Any binning is
        // fine but scores must stay within the data range.
        let v: Vec<f64> = (0..128).map(|i| 1.0 + (i % 10) as f64 * 0.001).collect();
        let b = ScoreBinning::default().bin(&v);
        let (lo, hi) = (0.999, 1.011);
        assert!(b.scores.iter().all(|&s| s > lo && s < hi));
    }

    #[test]
    fn deterministic() {
        let profile = fig5_like_profile();
        let a = ScoreBinning::default().bin(&profile);
        let b = ScoreBinning::default().bin(&profile);
        assert_eq!(a, b);
    }

    #[test]
    fn k_respects_bounds() {
        let profile = fig5_like_profile();
        let cfg = ScoreBinning {
            k_min: 2,
            k_max: 4,
            ..Default::default()
        };
        let b = cfg.bin(&profile);
        assert!(b.k >= 2 && b.k <= 4);
    }
}
