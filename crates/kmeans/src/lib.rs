//! # pal-kmeans
//!
//! K-Means clustering machinery for the PAL scheduler reproduction.
//!
//! The paper uses K-Means in two places:
//!
//! 1. **Application classification** (Section III-A): 2-D clustering of
//!    applications in the `DRAMUtil × PeakFUUtil` space to form ordered
//!    classes A, B, C, … (Figure 3).
//! 2. **PM-score binning** (Section III-B): 1-D clustering of per-GPU
//!    normalized performance into a small number of bins so the scheduler
//!    tracks a handful of PM-scores instead of one per GPU (Figure 5). The
//!    optimal bin count K is chosen with silhouette scores over K = 2..=11,
//!    with >3σ outliers separated first and given their own exact scores.
//!
//! This crate provides Lloyd's algorithm with k-means++ seeding
//! ([`kmeans::KMeans`]), silhouette analysis ([`silhouette`]), and the 1-D
//! binning pipeline ([`binning::ScoreBinning`]). All randomness flows
//! through caller-provided seeds for exact reproducibility.

#![warn(missing_docs)]

pub mod binning;
pub mod kmeans;
pub mod silhouette;

pub use binning::{BinnedScores, ScoreBinning};
pub use kmeans::{KMeans, KMeansResult};
pub use silhouette::{mean_silhouette, min_cluster_silhouette, silhouette_samples};
