//! Statistical validation of the trace generators against the published
//! trace characteristics (Section IV-B), aggregated over many seeds to
//! keep sampling noise out of the assertions.

use pal_gpumodel::GpuSpec;
use pal_trace::{read_trace_csv, write_trace_csv, ModelCatalog, SiaPhillyConfig, SynergyConfig};
use std::io::BufReader;

fn catalog() -> ModelCatalog {
    ModelCatalog::table2(&GpuSpec::v100())
}

#[test]
fn sia_demand_distribution_matches_published_stats() {
    let c = catalog();
    let traces: Vec<_> = (1..=8)
        .map(|w| SiaPhillyConfig::default().generate(w, &c))
        .collect();
    let all_jobs: Vec<_> = traces.iter().flat_map(|t| t.jobs.iter()).collect();
    let n = all_jobs.len() as f64;

    // ~40% single GPU.
    let singles = all_jobs.iter().filter(|j| j.gpu_demand == 1).count() as f64;
    assert!(
        (singles / n - 0.40).abs() < 0.05,
        "single fraction {}",
        singles / n
    );

    // Nothing above 48; power-of-two demands dominate the multi-GPU mass.
    assert!(all_jobs.iter().all(|j| j.gpu_demand <= 48));
    let pow2 = all_jobs
        .iter()
        .filter(|j| j.gpu_demand > 1 && j.gpu_demand.is_power_of_two())
        .count() as f64;
    let multi = all_jobs.iter().filter(|j| j.gpu_demand > 1).count() as f64;
    assert!(pow2 / multi > 0.8, "power-of-two share {}", pow2 / multi);
}

#[test]
fn sia_arrival_rate_close_to_twenty_per_hour() {
    let c = catalog();
    let mut rates = Vec::new();
    for w in 1..=8 {
        let t = SiaPhillyConfig::default().generate(w, &c);
        let span_h = t.jobs.last().unwrap().arrival / 3600.0;
        rates.push(t.len() as f64 / span_h);
    }
    let mean_rate = pal_stats::mean(&rates).unwrap();
    assert!((mean_rate - 20.0).abs() < 2.5, "mean rate {mean_rate}");
}

#[test]
fn synergy_mostly_single_gpu_and_poisson_like() {
    let c = catalog();
    let t = SynergyConfig {
        num_jobs: 3000,
        ..Default::default()
    }
    .generate(&c);
    assert!(t.single_gpu_fraction() > 0.78);

    // Poisson arrivals: inter-arrival CV ~ 1.
    let gaps: Vec<f64> = t
        .jobs
        .windows(2)
        .map(|w| w[1].arrival - w[0].arrival)
        .collect();
    let mean = pal_stats::mean(&gaps).unwrap();
    let sd = pal_stats::std_dev(&gaps).unwrap();
    let cv = sd / mean;
    assert!((cv - 1.0).abs() < 0.1, "inter-arrival CV {cv}");
}

#[test]
fn load_sweep_scales_arrivals_only() {
    let c = catalog();
    let base = SynergyConfig::default();
    let t_slow = base.at_load(5.0).generate(&c);
    let t_fast = base.at_load(20.0).generate(&c);
    // Same jobs, 4x compressed arrivals (same seed, same demand stream).
    assert_eq!(t_slow.len(), t_fast.len());
    for (a, b) in t_slow.jobs.iter().zip(&t_fast.jobs) {
        assert_eq!(a.gpu_demand, b.gpu_demand);
        assert_eq!(a.iterations, b.iterations);
        assert!((a.arrival / b.arrival - 4.0).abs() < 1e-6 || a.arrival == 0.0);
    }
}

#[test]
fn every_generated_trace_round_trips_through_csv() {
    let c = catalog();
    for w in [1u32, 5, 8] {
        let t = SiaPhillyConfig::default().generate(w, &c);
        let mut buf = Vec::new();
        write_trace_csv(&t, &mut buf).unwrap();
        let parsed = read_trace_csv(&t.name, BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, t, "workload {w} did not round trip");
    }
    let t = SynergyConfig::default().generate(&c);
    let mut buf = Vec::new();
    write_trace_csv(&t, &mut buf).unwrap();
    let parsed = read_trace_csv(&t.name, BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(parsed, t);
}

#[test]
fn duration_cap_is_respected() {
    let c = catalog();
    let cfg = SiaPhillyConfig {
        num_jobs: 500,
        max_duration_s: 10_000.0,
        ..Default::default()
    };
    let t = cfg.generate_seeded(1, 99, &c);
    for j in &t.jobs {
        // iterations = ceil(capped_duration / iter_time), so runtime can
        // exceed the cap by at most one iteration.
        assert!(
            j.ideal_runtime() <= 10_000.0 + j.base_iter_time,
            "{} runs {}s",
            j.id,
            j.ideal_runtime()
        );
    }
}

#[test]
fn classes_in_traces_match_catalog_ground_truth() {
    let c = catalog();
    let t = SiaPhillyConfig::default().generate(2, &c);
    for j in &t.jobs {
        let entry = c.get(j.model).expect("model in catalog");
        assert_eq!(j.class, entry.class, "{} class mismatch", j.id);
        assert!((j.base_iter_time - entry.base_iter_time).abs() < 1e-12);
    }
}
