//! Bridge between the GPU-model application zoo and trace generation:
//! per-model base iteration times (measured on a nominal GPU) and ground
//! truth class labels.

use pal_cluster::JobClass;
use pal_gpumodel::{GpuSpec, ModeledGpu, PmState, Workload};
use serde::{Deserialize, Serialize};

/// Catalog of schedulable models with their nominal iteration times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCatalog {
    entries: Vec<CatalogEntry>,
}

/// One catalog row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// The model.
    pub model: Workload,
    /// Ground-truth class (from the paper's Table II / Figure 3).
    pub class: JobClass,
    /// Iteration time on a nominal (median) GPU, seconds.
    pub base_iter_time: f64,
}

impl ModelCatalog {
    /// The six Table II models timed on a nominal GPU of `spec` — the set
    /// the paper's traces schedule.
    pub fn table2(spec: &GpuSpec) -> Self {
        Self::from_workloads(&Workload::TABLE_II, spec)
    }

    /// Build a catalog for an arbitrary workload set.
    pub fn from_workloads(workloads: &[Workload], spec: &GpuSpec) -> Self {
        let nominal = ModeledGpu {
            spec: spec.clone(),
            pm: PmState::nominal(),
        };
        let entries = workloads
            .iter()
            .map(|&model| {
                let app = model.spec();
                CatalogEntry {
                    model,
                    class: JobClass(app.expected_class),
                    base_iter_time: nominal.iteration_time(&app.kernels),
                }
            })
            .collect();
        ModelCatalog { entries }
    }

    /// All entries.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a model's entry.
    pub fn get(&self, model: Workload) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.model == model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_models() {
        let c = ModelCatalog::table2(&GpuSpec::v100());
        assert_eq!(c.len(), 6);
        assert!(c.get(Workload::Bert).is_some());
        assert!(c.get(Workload::PageRank).is_none());
    }

    #[test]
    fn iteration_times_positive() {
        let c = ModelCatalog::table2(&GpuSpec::quadro_rtx5000());
        for e in c.entries() {
            assert!(e.base_iter_time > 0.0, "{:?}", e.model);
        }
    }

    #[test]
    fn classes_match_zoo_ground_truth() {
        let c = ModelCatalog::table2(&GpuSpec::v100());
        assert_eq!(c.get(Workload::ResNet50).unwrap().class, JobClass::A);
        assert_eq!(c.get(Workload::Bert).unwrap().class, JobClass::B);
        assert_eq!(c.get(Workload::PointNet).unwrap().class, JobClass::C);
    }

    #[test]
    fn catalog_covers_all_three_classes() {
        let c = ModelCatalog::table2(&GpuSpec::v100());
        let classes: std::collections::HashSet<usize> =
            c.entries().iter().map(|e| e.class.0).collect();
        assert!(classes.contains(&0) && classes.contains(&1) && classes.contains(&2));
    }
}
