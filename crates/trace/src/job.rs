//! Job specifications and traces.

use pal_cluster::JobClass;
use pal_gpumodel::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense job identifier within one trace (arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// One ML training job as submitted to the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Identifier (arrival order within the trace).
    pub id: JobId,
    /// The model being trained.
    pub model: Workload,
    /// Variability class of the model (ground truth; the classifier of the
    /// `pal` crate recovers this from utilization features).
    pub class: JobClass,
    /// Submission time, seconds from trace start.
    pub arrival: f64,
    /// Number of GPUs requested (fixed for the job's lifetime — these are
    /// rigid jobs, like Tiresias').
    pub gpu_demand: usize,
    /// Training iterations to run.
    pub iterations: u64,
    /// Iteration time on a median GPU with a fully packed allocation,
    /// seconds.
    pub base_iter_time: f64,
}

impl JobSpec {
    /// Ideal runtime (no variability, no locality penalty, no queueing),
    /// seconds.
    pub fn ideal_runtime(&self) -> f64 {
        self.iterations as f64 * self.base_iter_time
    }

    /// GPU-seconds of ideal service this job demands.
    pub fn ideal_gpu_service(&self) -> f64 {
        self.ideal_runtime() * self.gpu_demand as f64
    }

    /// Validate internal consistency; used by generators and tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.gpu_demand == 0 {
            return Err(format!("{}: zero GPU demand", self.id));
        }
        if self.iterations == 0 {
            return Err(format!("{}: zero iterations", self.id));
        }
        if self.base_iter_time <= 0.0 || self.base_iter_time.is_nan() {
            return Err(format!("{}: non-positive iteration time", self.id));
        }
        if self.arrival < 0.0 || self.arrival.is_nan() {
            return Err(format!("{}: negative arrival", self.id));
        }
        Ok(())
    }
}

/// A full trace: jobs sorted by arrival time.
///
/// A trace is immutable once built — the simulator copies per-job *run
/// state* out of it, never mutates it — so sweeps running many scenarios
/// over one workload should share it via `Arc<Trace>` (every
/// `pal_sim::Scenario` input setter accepts `impl Into<Arc<T>>`) rather
/// than deep-cloning the job list per run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable trace name (e.g. `sia-philly-3`).
    pub name: String,
    /// Jobs in arrival order.
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Build a trace, sorting by arrival and re-assigning dense ids in
    /// arrival order. Panics if any job fails validation.
    pub fn new(name: impl Into<String>, mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("NaN arrival"));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = JobId(i as u32);
            if let Err(e) = j.validate() {
                panic!("invalid job in trace: {e}");
            }
        }
        Trace {
            name: name.into(),
            jobs,
        }
    }

    /// Build a trace from a stream of jobs already in arrival order,
    /// without the sort (and its scratch) [`Trace::new`] performs: jobs
    /// are validated and densely re-numbered as they are drained, so
    /// peak memory is the output vector itself plus O(1) per job — the
    /// shape that matters when generators stream 100k-job synthetic
    /// traces straight into a trace (see
    /// [`SynergyConfig::stream`](crate::SynergyConfig::stream)). Panics
    /// if a job fails validation or arrives before its predecessor.
    pub fn from_sorted_stream(
        name: impl Into<String>,
        jobs: impl IntoIterator<Item = JobSpec>,
    ) -> Self {
        let iter = jobs.into_iter();
        let mut out: Vec<JobSpec> = Vec::with_capacity(iter.size_hint().0);
        let mut last_arrival = f64::NEG_INFINITY;
        for (i, mut j) in iter.enumerate() {
            j.id = JobId(i as u32);
            if let Err(e) = j.validate() {
                panic!("invalid job in trace: {e}");
            }
            assert!(
                j.arrival >= last_arrival,
                "{}: arrival {} out of order (previous {})",
                j.id,
                j.arrival,
                last_arrival
            );
            last_arrival = j.arrival;
            out.push(j);
        }
        Trace {
            name: name.into(),
            jobs: out,
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Fraction of single-GPU jobs.
    pub fn single_gpu_fraction(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.gpu_demand == 1).count() as f64 / self.jobs.len() as f64
    }

    /// Largest GPU demand in the trace.
    pub fn max_gpu_demand(&self) -> usize {
        self.jobs.iter().map(|j| j.gpu_demand).max().unwrap_or(0)
    }

    /// Total ideal GPU-seconds of service across all jobs (used to estimate
    /// offered load against cluster capacity).
    pub fn total_ideal_gpu_service(&self) -> f64 {
        self.jobs.iter().map(|j| j.ideal_gpu_service()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, arrival: f64, demand: usize) -> JobSpec {
        JobSpec {
            id: JobId(id),
            model: Workload::ResNet50,
            class: JobClass::A,
            arrival,
            gpu_demand: demand,
            iterations: 100,
            base_iter_time: 0.5,
        }
    }

    #[test]
    fn ideal_runtime_and_service() {
        let j = job(0, 0.0, 4);
        assert_eq!(j.ideal_runtime(), 50.0);
        assert_eq!(j.ideal_gpu_service(), 200.0);
    }

    #[test]
    fn trace_sorts_and_renumbers() {
        let t = Trace::new("t", vec![job(5, 10.0, 1), job(9, 5.0, 2)]);
        assert_eq!(t.jobs[0].arrival, 5.0);
        assert_eq!(t.jobs[0].id, JobId(0));
        assert_eq!(t.jobs[1].id, JobId(1));
    }

    #[test]
    fn single_gpu_fraction_counts() {
        let t = Trace::new("t", vec![job(0, 0.0, 1), job(1, 1.0, 1), job(2, 2.0, 4)]);
        assert!((t.single_gpu_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.max_gpu_demand(), 4);
    }

    #[test]
    #[should_panic(expected = "zero GPU demand")]
    fn invalid_job_panics() {
        Trace::new("t", vec![job(0, 0.0, 0)]);
    }

    #[test]
    fn validate_catches_all_fields() {
        let mut j = job(0, 0.0, 1);
        j.iterations = 0;
        assert!(j.validate().is_err());
        let mut j = job(0, 0.0, 1);
        j.base_iter_time = 0.0;
        assert!(j.validate().is_err());
        let mut j = job(0, 0.0, 1);
        j.arrival = -1.0;
        assert!(j.validate().is_err());
        assert!(job(0, 0.0, 1).validate().is_ok());
    }

    #[test]
    fn from_sorted_stream_matches_new() {
        let jobs = vec![job(7, 1.0, 1), job(3, 2.0, 2), job(9, 2.0, 4)];
        let streamed = Trace::from_sorted_stream("t", jobs.clone());
        assert_eq!(streamed, Trace::new("t", jobs));
        assert_eq!(streamed.jobs[2].id, JobId(2));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn from_sorted_stream_rejects_unsorted() {
        Trace::from_sorted_stream("t", vec![job(0, 5.0, 1), job(1, 4.0, 1)]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("t", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.max_gpu_demand(), 0);
        assert_eq!(t.single_gpu_fraction(), 0.0);
    }
}
