//! Synergy trace regeneration (Section IV-B1).
//!
//! Published characteristics we reproduce: "Synergy workloads preserve the
//! Philly trace's GPU demand and use a Poisson distribution of arrival
//! times to vary job arrival rate. Synergy traces have a higher proportion
//! of single-GPU jobs (>80%) than Sia-Philly traces", evaluated on a
//! 64-node × 4-GPU (256-GPU) cluster at loads from 4 to 20 jobs/hour. The
//! paper reports steady-state metrics over a job-id window; the generator
//! produces enough jobs for a warm-up + measurement window.

use crate::generator::{exponential, lognormal, weighted_choice};
use crate::job::{JobId, JobSpec, Trace};
use crate::models::ModelCatalog;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the Synergy generator.
#[derive(Debug, Clone)]
pub struct SynergyConfig {
    /// Total jobs to generate.
    pub num_jobs: usize,
    /// Poisson arrival rate, jobs per hour (the x-axis of Figures 14/16/17).
    pub jobs_per_hour: f64,
    /// Fraction of single-GPU jobs (paper: >0.8).
    pub single_gpu_fraction: f64,
    /// Median ideal duration, seconds. Calibrated so the 256-GPU cluster
    /// saturates between 10 and 14 jobs/hour, as in Figures 14–15 (the
    /// trace is mostly single-GPU jobs, so saturation requires multi-hour
    /// durations).
    pub median_duration_s: f64,
    /// Log-normal sigma of durations.
    pub duration_sigma: f64,
    /// Cap on ideal duration, seconds.
    pub max_duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynergyConfig {
    fn default() -> Self {
        SynergyConfig {
            num_jobs: 600,
            jobs_per_hour: 10.0,
            single_gpu_fraction: 0.82,
            median_duration_s: 14400.0,
            duration_sigma: 1.3,
            max_duration_s: 172_800.0,
            seed: 0x5E4E26,
        }
    }
}

/// Philly GPU-demand distribution for the multi-GPU minority (Synergy
/// "preserves the Philly trace's GPU demand"; Philly multi-GPU jobs are
/// dominated by 2-, 4-, and 8-GPU requests).
const MULTI_GPU_DEMANDS: [(usize, f64); 5] =
    [(2, 0.40), (4, 0.32), (8, 0.18), (16, 0.07), (32, 0.03)];

impl SynergyConfig {
    /// Stream Synergy jobs one at a time, in arrival order, without
    /// materializing the trace: each `next()` draws one job's samples
    /// from the seeded RNG and returns it, so the generator's peak
    /// scratch is O(1) per job (one `JobSpec`, reused sampling state)
    /// however long the trace. [`generate`](SynergyConfig::generate)
    /// collects this same stream — sample for sample — so a streamed
    /// trace is bit-identical to a generated one.
    pub fn stream<'a>(&self, catalog: &'a ModelCatalog) -> SynergyJobs<'a> {
        assert!(!catalog.is_empty(), "empty model catalog");
        assert!(self.jobs_per_hour > 0.0, "non-positive arrival rate");
        SynergyJobs {
            cfg: self.clone(),
            catalog,
            rng: StdRng::seed_from_u64(self.seed),
            model_weights: (0..catalog.len()).map(|i| (i, 1.0)).collect(),
            rate_per_s: self.jobs_per_hour / 3600.0,
            t: 0.0,
            produced: 0,
        }
    }

    /// Generate a Synergy trace at this config's arrival rate.
    pub fn generate(&self, catalog: &ModelCatalog) -> Trace {
        Trace::from_sorted_stream(
            format!("synergy-{:.0}jph", self.jobs_per_hour),
            self.stream(catalog),
        )
    }

    /// Same trace shape at a different arrival rate (the load sweeps keep
    /// the job population but compress/stretch arrivals — matching how the
    /// paper varies load while preserving Philly GPU demands).
    pub fn at_load(&self, jobs_per_hour: f64) -> Self {
        SynergyConfig {
            jobs_per_hour,
            ..self.clone()
        }
    }
}

/// Streaming Synergy job source: an iterator yielding
/// [`SynergyConfig::num_jobs`] jobs in arrival order, one RNG draw set
/// per `next()`. Created by [`SynergyConfig::stream`].
#[derive(Debug)]
pub struct SynergyJobs<'a> {
    cfg: SynergyConfig,
    catalog: &'a ModelCatalog,
    rng: StdRng,
    model_weights: Vec<(usize, f64)>,
    rate_per_s: f64,
    t: f64,
    produced: usize,
}

impl Iterator for SynergyJobs<'_> {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.produced >= self.cfg.num_jobs {
            return None;
        }
        let i = self.produced;
        self.produced += 1;
        self.t += exponential(&mut self.rng, self.rate_per_s);
        let single = weighted_choice(
            &mut self.rng,
            &[
                (true, self.cfg.single_gpu_fraction),
                (false, 1.0 - self.cfg.single_gpu_fraction),
            ],
        );
        let gpu_demand = if single {
            1
        } else {
            weighted_choice(&mut self.rng, &MULTI_GPU_DEMANDS)
        };
        let entry = &self.catalog.entries()[weighted_choice(&mut self.rng, &self.model_weights)];
        let size_factor = (gpu_demand as f64).powf(0.25);
        let duration = (lognormal(
            &mut self.rng,
            self.cfg.median_duration_s,
            self.cfg.duration_sigma,
        ) * size_factor)
            .min(self.cfg.max_duration_s);
        let iterations = (duration / entry.base_iter_time).ceil().max(1.0) as u64;
        Some(JobSpec {
            id: JobId(i as u32),
            model: entry.model,
            class: entry.class,
            arrival: self.t,
            gpu_demand,
            iterations,
            base_iter_time: entry.base_iter_time,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.num_jobs - self.produced;
        (left, Some(left))
    }
}

impl ExactSizeIterator for SynergyJobs<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use pal_gpumodel::GpuSpec;

    fn catalog() -> ModelCatalog {
        ModelCatalog::table2(&GpuSpec::v100())
    }

    #[test]
    fn job_count_and_name() {
        let t = SynergyConfig::default().generate(&catalog());
        assert_eq!(t.len(), 600);
        assert_eq!(t.name, "synergy-10jph");
    }

    #[test]
    fn over_eighty_percent_single_gpu() {
        let t = SynergyConfig::default().generate(&catalog());
        assert!(
            t.single_gpu_fraction() > 0.75,
            "single fraction {}",
            t.single_gpu_fraction()
        );
    }

    #[test]
    fn arrival_rate_matches_load() {
        let cfg = SynergyConfig {
            num_jobs: 2000,
            jobs_per_hour: 8.0,
            ..Default::default()
        };
        let t = cfg.generate(&catalog());
        let span_hours = t.jobs.last().unwrap().arrival / 3600.0;
        let rate = 2000.0 / span_hours;
        assert!((rate - 8.0).abs() < 0.5, "observed rate {rate}");
    }

    #[test]
    fn at_load_changes_only_rate() {
        let base = SynergyConfig::default();
        let fast = base.at_load(20.0);
        assert_eq!(fast.num_jobs, base.num_jobs);
        assert_eq!(fast.seed, base.seed);
        assert_eq!(fast.jobs_per_hour, 20.0);
        // Same seed, higher rate: same demands, compressed arrivals.
        let t_base = base.generate(&catalog());
        let t_fast = fast.generate(&catalog());
        assert!(t_fast.jobs.last().unwrap().arrival < t_base.jobs.last().unwrap().arrival);
        let d_base: Vec<usize> = t_base.jobs.iter().map(|j| j.gpu_demand).collect();
        let d_fast: Vec<usize> = t_fast.jobs.iter().map(|j| j.gpu_demand).collect();
        assert_eq!(d_base, d_fast);
    }

    #[test]
    fn stream_is_bit_identical_to_generate() {
        let c = catalog();
        let cfg = SynergyConfig::default();
        let generated = cfg.generate(&c);
        let streamed: Vec<_> = cfg.stream(&c).collect();
        assert_eq!(generated.jobs, streamed);
        let hint = cfg.stream(&c);
        assert_eq!(hint.len(), cfg.num_jobs);
    }

    #[test]
    fn stream_arrivals_are_sorted() {
        let c = catalog();
        let mut last = 0.0;
        for j in SynergyConfig::default().stream(&c) {
            assert!(j.arrival >= last);
            last = j.arrival;
        }
    }

    #[test]
    fn deterministic() {
        let c = catalog();
        assert_eq!(
            SynergyConfig::default().generate(&c),
            SynergyConfig::default().generate(&c)
        );
    }

    #[test]
    fn demands_bounded_by_philly_cap() {
        let t = SynergyConfig::default().generate(&catalog());
        assert!(t.max_gpu_demand() <= 32);
    }

    #[test]
    fn multi_gpu_jobs_exist() {
        let t = SynergyConfig::default().generate(&catalog());
        assert!(t.jobs.iter().any(|j| j.gpu_demand > 1));
    }
}
