//! External cluster-trace importers.
//!
//! Production traces (Microsoft Philly, Alibaba PAI, Google Borg) publish
//! per-job rows with a submission time, a GPU request, and a duration —
//! but no model identity or iteration structure, which this simulator
//! needs. [`import_csv_trace`] bridges the gap: it streams rows out of a
//! header-named CSV (columns located by name, not position, so column
//! order and extra columns don't matter), converts times and GPU counts
//! into simulator units via a per-family [`ExternalCsvFormat`], and
//! synthesizes the missing iteration structure from an
//! [`ImportOptions`]-supplied model (`iterations = ceil(duration /
//! base_iter_time)`, so the imported ideal runtime matches the recorded
//! duration).
//!
//! Parsing is streaming: each row is read, converted, and appended
//! directly into the output job list — no intermediate row
//! materialization — matching the streaming contract of the synthetic
//! generators ([`crate::SynergyConfig::stream`]).
//!
//! Rows that describe work the simulator can't schedule (zero GPUs after
//! scaling, non-positive duration — e.g. failed or cancelled jobs) are
//! *skipped*, not errors: production traces contain them by the thousand.

use crate::io::TraceIoError;
use crate::job::{JobId, JobSpec, Trace};
use pal_cluster::JobClass;
use pal_gpumodel::Workload;
use std::io::BufRead;

/// Column layout and unit conversions for one external trace family.
///
/// The presets ([`philly`](ExternalCsvFormat::philly),
/// [`alibaba`](ExternalCsvFormat::alibaba),
/// [`google`](ExternalCsvFormat::google)) encode the common published
/// shapes; all fields are public so a config can adjust a column name
/// without a new format.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalCsvFormat {
    /// Header name of the submission-time column.
    pub submit_col: String,
    /// Header name of the GPU-request column.
    pub gpus_col: String,
    /// Header name of the duration column, if the trace records one.
    /// Exactly one of `duration_col` / `end_col` must be set.
    pub duration_col: Option<String>,
    /// Header name of the end-time column; duration is then
    /// `end - submit`. Exactly one of `duration_col` / `end_col` must be
    /// set.
    pub end_col: Option<String>,
    /// Multiplier converting the trace's time unit into seconds (e.g.
    /// `1e-6` for microsecond timestamps).
    pub time_scale: f64,
    /// Divisor converting the GPU column into whole GPUs, rounded up
    /// (Alibaba's `plan_gpu` is in percent: 50 ⇒ 1 GPU, 600 ⇒ 6).
    pub gpu_divisor: f64,
}

impl ExternalCsvFormat {
    /// Philly-style rows: `submit_time,num_gpus,duration` in seconds.
    pub fn philly() -> Self {
        ExternalCsvFormat {
            submit_col: "submit_time".into(),
            gpus_col: "num_gpus".into(),
            duration_col: Some("duration".into()),
            end_col: None,
            time_scale: 1.0,
            gpu_divisor: 1.0,
        }
    }

    /// Alibaba-PAI-style rows: `start_time,end_time` in seconds,
    /// `plan_gpu` in GPU-percent.
    pub fn alibaba() -> Self {
        ExternalCsvFormat {
            submit_col: "start_time".into(),
            gpus_col: "plan_gpu".into(),
            duration_col: None,
            end_col: Some("end_time".into()),
            time_scale: 1.0,
            gpu_divisor: 100.0,
        }
    }

    /// Google-Borg-style rows: microsecond `submit_time` and `runtime`,
    /// whole-GPU `gpus`.
    pub fn google() -> Self {
        ExternalCsvFormat {
            submit_col: "submit_time".into(),
            gpus_col: "gpus".into(),
            duration_col: Some("runtime".into()),
            end_col: None,
            time_scale: 1e-6,
            gpu_divisor: 1.0,
        }
    }

    fn validate(&self) -> Result<(), TraceIoError> {
        match (&self.duration_col, &self.end_col) {
            (Some(_), Some(_)) | (None, None) => Err(TraceIoError::Parse(
                0,
                "format must set exactly one of duration_col / end_col".into(),
            )),
            _ => {
                if !(self.time_scale > 0.0 && self.time_scale.is_finite()) {
                    return Err(TraceIoError::Parse(0, "non-positive time_scale".into()));
                }
                if !(self.gpu_divisor > 0.0 && self.gpu_divisor.is_finite()) {
                    return Err(TraceIoError::Parse(0, "non-positive gpu_divisor".into()));
                }
                Ok(())
            }
        }
    }
}

/// What the external trace does *not* record: the simulator-side identity
/// synthesized onto every imported job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportOptions {
    /// Model assigned to every imported job (drives locality lookups).
    pub model: Workload,
    /// Variability class assigned to every imported job.
    pub class: JobClass,
    /// Iteration time used to discretize durations into iterations,
    /// seconds.
    pub base_iter_time: f64,
    /// Keep at most this many (valid) rows; `None` imports everything.
    pub max_jobs: Option<usize>,
}

impl Default for ImportOptions {
    fn default() -> Self {
        ImportOptions {
            model: Workload::ResNet50,
            class: JobClass::A,
            base_iter_time: 1.0,
            max_jobs: None,
        }
    }
}

/// Import an external cluster trace from CSV, streaming. See the
/// [module docs](self) for the conversion model.
///
/// Times are re-based so the earliest submission lands at `t = 0`
/// (published traces start at arbitrary epoch offsets), and jobs are
/// sorted by arrival (production logs are usually, but not always,
/// ordered).
pub fn import_csv_trace<R: BufRead>(
    name: &str,
    format: &ExternalCsvFormat,
    opts: &ImportOptions,
    input: R,
) -> Result<Trace, TraceIoError> {
    format.validate()?;
    if !(opts.base_iter_time > 0.0 && opts.base_iter_time.is_finite()) {
        return Err(TraceIoError::Parse(0, "non-positive base_iter_time".into()));
    }
    let mut lines = input.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Err(TraceIoError::Parse(0, "empty file: no header row".into())),
    };
    let columns: Vec<&str> = header.split(',').map(str::trim).collect();
    let col = |name: &str| -> Result<usize, TraceIoError> {
        columns.iter().position(|c| *c == name).ok_or_else(|| {
            TraceIoError::Parse(
                1,
                format!("missing column `{name}` (header: {})", header.trim()),
            )
        })
    };
    let submit_idx = col(&format.submit_col)?;
    let gpus_idx = col(&format.gpus_col)?;
    // validate() guarantees exactly one of the two is set.
    let (dur_idx, dur_is_end) = match (&format.duration_col, &format.end_col) {
        (Some(c), None) => (col(c)?, false),
        (None, Some(c)) => (col(c)?, true),
        _ => unreachable!("validated above"),
    };

    let mut jobs: Vec<JobSpec> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 2; // 1-based, after the header
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cap) = opts.max_jobs {
            if jobs.len() >= cap {
                break;
            }
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let field = |idx: usize, what: &str| -> Result<f64, TraceIoError> {
            let raw = fields.get(idx).copied().unwrap_or("");
            raw.parse::<f64>()
                .map_err(|_| TraceIoError::Parse(lineno, format!("bad {what} `{raw}`")))
        };
        let submit = field(submit_idx, &format.submit_col)? * format.time_scale;
        let gpus_raw = field(gpus_idx, &format.gpus_col)?;
        let duration = if dur_is_end {
            (field(dur_idx, format.end_col.as_deref().unwrap_or(""))? - submit / format.time_scale)
                * format.time_scale
        } else {
            field(dur_idx, format.duration_col.as_deref().unwrap_or(""))? * format.time_scale
        };
        if !submit.is_finite() || submit < 0.0 {
            return Err(TraceIoError::Parse(
                lineno,
                format!("negative or non-finite submit time {submit}"),
            ));
        }
        let gpu_demand = (gpus_raw / format.gpu_divisor).ceil();
        // Failed/cancelled/CPU-only rows (or NaN fields): skip, don't
        // error.
        if gpu_demand.is_nan() || gpu_demand < 1.0 || duration.is_nan() || duration <= 0.0 {
            continue;
        }
        let iterations = (duration / opts.base_iter_time).ceil().max(1.0) as u64;
        jobs.push(JobSpec {
            id: JobId(jobs.len() as u32),
            model: opts.model,
            class: opts.class,
            arrival: submit,
            gpu_demand: gpu_demand as usize,
            iterations,
            base_iter_time: opts.base_iter_time,
        });
    }
    // Re-base to t = 0 (Trace::new re-sorts and re-numbers).
    let t0 = jobs.iter().map(|j| j.arrival).fold(f64::INFINITY, f64::min);
    if t0.is_finite() && t0 > 0.0 {
        for j in &mut jobs {
            j.arrival -= t0;
        }
    }
    Ok(Trace::new(name, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn import(
        format: &ExternalCsvFormat,
        opts: &ImportOptions,
        csv: &str,
    ) -> Result<Trace, TraceIoError> {
        import_csv_trace("ext", format, opts, BufReader::new(csv.as_bytes()))
    }

    #[test]
    fn philly_style_import() {
        let csv = "jobid,submit_time,num_gpus,duration,status\n\
                   a,100,2,600,Pass\n\
                   b,160,1,30,Pass\n\
                   c,220,0,600,Failed\n\
                   d,400,8,86400,Pass\n";
        let t = import(&ExternalCsvFormat::philly(), &ImportOptions::default(), csv).unwrap();
        // Row c has zero GPUs: skipped.
        assert_eq!(t.len(), 3);
        // Re-based to t = 0.
        assert_eq!(t.jobs[0].arrival, 0.0);
        assert_eq!(t.jobs[1].arrival, 60.0);
        assert_eq!(t.jobs[2].arrival, 300.0);
        assert_eq!(t.jobs[2].gpu_demand, 8);
        // Duration is preserved through the iteration discretization.
        assert!((t.jobs[2].ideal_runtime() - 86400.0).abs() < 1.0);
    }

    #[test]
    fn alibaba_style_gpu_percent_and_end_times() {
        let csv = "job_name,start_time,end_time,plan_gpu\n\
                   x,1000,1600,600\n\
                   y,1100,1160,50\n\
                   z,1200,1100,100\n";
        let t = import(
            &ExternalCsvFormat::alibaba(),
            &ImportOptions::default(),
            csv,
        )
        .unwrap();
        // Row z has negative duration: skipped.
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs[0].gpu_demand, 6); // 600 percent ⇒ 6 GPUs
        assert_eq!(t.jobs[1].gpu_demand, 1); // 50 percent ⇒ 1 GPU
        assert!((t.jobs[0].ideal_runtime() - 600.0).abs() < 1.0);
    }

    #[test]
    fn google_style_microseconds() {
        let csv = "submit_time,gpus,runtime\n\
                   1000000000,4,600000000\n\
                   2000000000,1,60000000\n";
        let t = import(&ExternalCsvFormat::google(), &ImportOptions::default(), csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs[1].arrival - t.jobs[0].arrival, 1000.0);
        assert!((t.jobs[0].ideal_runtime() - 600.0).abs() < 1.0);
    }

    #[test]
    fn out_of_order_rows_are_sorted() {
        let csv = "submit_time,num_gpus,duration\n200,1,60\n100,2,60\n";
        let t = import(&ExternalCsvFormat::philly(), &ImportOptions::default(), csv).unwrap();
        assert_eq!(t.jobs[0].gpu_demand, 2);
        assert_eq!(t.jobs[0].arrival, 0.0);
        assert_eq!(t.jobs[1].arrival, 100.0);
    }

    #[test]
    fn missing_column_is_line_1_error() {
        let csv = "submit_time,duration\n100,60\n";
        let err = import(&ExternalCsvFormat::philly(), &ImportOptions::default(), csv).unwrap_err();
        assert!(
            matches!(&err, TraceIoError::Parse(1, m) if m.contains("num_gpus")),
            "{err}"
        );
    }

    #[test]
    fn bad_cell_reports_its_line() {
        let csv = "submit_time,num_gpus,duration\n100,2,600\nnope,1,60\n";
        let err = import(&ExternalCsvFormat::philly(), &ImportOptions::default(), csv).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(3, _)), "{err}");
    }

    #[test]
    fn max_jobs_caps_import() {
        let csv = "submit_time,num_gpus,duration\n0,1,60\n10,1,60\n20,1,60\n";
        let opts = ImportOptions {
            max_jobs: Some(2),
            ..Default::default()
        };
        let t = import(&ExternalCsvFormat::philly(), &opts, csv).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn options_assign_identity() {
        let csv = "submit_time,num_gpus,duration\n0,1,100\n";
        let opts = ImportOptions {
            model: Workload::Bert,
            class: JobClass::C,
            base_iter_time: 0.5,
            max_jobs: None,
        };
        let t = import(&ExternalCsvFormat::philly(), &opts, csv).unwrap();
        assert_eq!(t.jobs[0].model, Workload::Bert);
        assert_eq!(t.jobs[0].class, JobClass::C);
        assert_eq!(t.jobs[0].iterations, 200);
    }

    #[test]
    fn format_must_pick_one_duration_source() {
        let mut f = ExternalCsvFormat::philly();
        f.end_col = Some("end".into());
        let err = import(&f, &ImportOptions::default(), "a,b\n").unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
    }

    #[test]
    fn empty_file_errors() {
        let err = import(&ExternalCsvFormat::philly(), &ImportOptions::default(), "").unwrap_err();
        assert!(err.to_string().contains("no header"), "{err}");
    }
}
