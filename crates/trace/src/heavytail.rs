//! Heavy-tail trace family: Pareto-distributed job durations.
//!
//! The Philly and Synergy regenerations draw durations from a log-normal;
//! production cluster studies (Philly itself, Alibaba's GPU traces)
//! consistently report heavier-than-lognormal tails — a small fraction of
//! multi-day jobs carrying most of the GPU-hours. This family makes that
//! regime available to sweeps: durations follow a bounded Pareto
//! (`P(D > d) ∝ d^{-α}`), so lowering `alpha` below ~1.5 shifts the bulk
//! of total service into the tail and stresses schedulers that starve
//! long jobs (LAS demotion, SRTF) in ways the log-normal families don't.
//!
//! Mirrors [`SynergyConfig`](crate::SynergyConfig)'s shape: Poisson
//! arrivals at a configurable rate, a single-GPU majority with
//! Philly-like multi-GPU demands, a streaming generator
//! ([`HeavyTailConfig::stream`]) whose collected output is bit-identical
//! to [`HeavyTailConfig::generate`].

use crate::generator::{exponential, weighted_choice};
use crate::job::{JobId, JobSpec, Trace};
use crate::models::ModelCatalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Philly-like GPU-demand distribution for the multi-GPU minority.
const MULTI_GPU_DEMANDS: [(usize, f64); 5] =
    [(2, 0.40), (4, 0.32), (8, 0.18), (16, 0.07), (32, 0.03)];

/// Configuration for the heavy-tail (bounded-Pareto) generator.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyTailConfig {
    /// Total jobs to generate.
    pub num_jobs: usize,
    /// Poisson arrival rate, jobs per hour.
    pub jobs_per_hour: f64,
    /// Pareto tail index. Smaller is heavier; `α ≤ 1` puts almost all
    /// service in the tail (infinite mean before the cap).
    pub alpha: f64,
    /// Minimum ideal duration, seconds (the Pareto scale parameter).
    pub min_duration_s: f64,
    /// Cap on ideal duration, seconds (bounds the tail as cluster
    /// policies do in practice).
    pub max_duration_s: f64,
    /// Fraction of single-GPU jobs.
    pub single_gpu_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HeavyTailConfig {
    fn default() -> Self {
        HeavyTailConfig {
            num_jobs: 600,
            jobs_per_hour: 10.0,
            alpha: 1.2,
            min_duration_s: 300.0,
            max_duration_s: 259_200.0,
            single_gpu_fraction: 0.7,
            seed: 0x7A11,
        }
    }
}

impl HeavyTailConfig {
    /// Stream jobs one at a time in arrival order without materializing
    /// the trace (the contract of
    /// [`SynergyConfig::stream`](crate::SynergyConfig::stream):
    /// [`generate`](HeavyTailConfig::generate) collects this exact
    /// stream, sample for sample).
    pub fn stream<'a>(&self, catalog: &'a ModelCatalog) -> HeavyTailJobs<'a> {
        assert!(!catalog.is_empty(), "empty model catalog");
        assert!(self.jobs_per_hour > 0.0, "non-positive arrival rate");
        assert!(self.alpha > 0.0, "non-positive Pareto alpha");
        assert!(
            self.min_duration_s > 0.0 && self.max_duration_s >= self.min_duration_s,
            "invalid duration bounds"
        );
        HeavyTailJobs {
            cfg: self.clone(),
            catalog,
            rng: StdRng::seed_from_u64(self.seed),
            model_weights: (0..catalog.len()).map(|i| (i, 1.0)).collect(),
            rate_per_s: self.jobs_per_hour / 3600.0,
            t: 0.0,
            produced: 0,
        }
    }

    /// Generate the full trace at this config's arrival rate.
    pub fn generate(&self, catalog: &ModelCatalog) -> Trace {
        Trace::from_sorted_stream(
            format!("heavy-tail-{:.0}jph", self.jobs_per_hour),
            self.stream(catalog),
        )
    }

    /// Same job population at a different arrival rate (the load knob, as
    /// in [`SynergyConfig::at_load`](crate::SynergyConfig::at_load)).
    pub fn at_load(&self, jobs_per_hour: f64) -> Self {
        HeavyTailConfig {
            jobs_per_hour,
            ..self.clone()
        }
    }
}

/// Streaming heavy-tail job source created by [`HeavyTailConfig::stream`].
#[derive(Debug)]
pub struct HeavyTailJobs<'a> {
    cfg: HeavyTailConfig,
    catalog: &'a ModelCatalog,
    rng: StdRng,
    model_weights: Vec<(usize, f64)>,
    rate_per_s: f64,
    t: f64,
    produced: usize,
}

impl Iterator for HeavyTailJobs<'_> {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.produced >= self.cfg.num_jobs {
            return None;
        }
        let i = self.produced;
        self.produced += 1;
        self.t += exponential(&mut self.rng, self.rate_per_s);
        let single = weighted_choice(
            &mut self.rng,
            &[
                (true, self.cfg.single_gpu_fraction),
                (false, 1.0 - self.cfg.single_gpu_fraction),
            ],
        );
        let gpu_demand = if single {
            1
        } else {
            weighted_choice(&mut self.rng, &MULTI_GPU_DEMANDS)
        };
        let entry = &self.catalog.entries()[weighted_choice(&mut self.rng, &self.model_weights)];
        // Bounded Pareto by inversion: D = x_min · U^{-1/α}, capped.
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let duration =
            (self.cfg.min_duration_s * u.powf(-1.0 / self.cfg.alpha)).min(self.cfg.max_duration_s);
        let iterations = (duration / entry.base_iter_time).ceil().max(1.0) as u64;
        Some(JobSpec {
            id: JobId(i as u32),
            model: entry.model,
            class: entry.class,
            arrival: self.t,
            gpu_demand,
            iterations,
            base_iter_time: entry.base_iter_time,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.num_jobs - self.produced;
        (left, Some(left))
    }
}

impl ExactSizeIterator for HeavyTailJobs<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use pal_gpumodel::GpuSpec;

    fn catalog() -> ModelCatalog {
        ModelCatalog::table2(&GpuSpec::v100())
    }

    #[test]
    fn job_count_name_and_determinism() {
        let cfg = HeavyTailConfig::default();
        let t = cfg.generate(&catalog());
        assert_eq!(t.len(), 600);
        assert_eq!(t.name, "heavy-tail-10jph");
        assert_eq!(t, cfg.generate(&catalog()));
    }

    #[test]
    fn stream_is_bit_identical_to_generate() {
        let c = catalog();
        let cfg = HeavyTailConfig::default();
        let generated = cfg.generate(&c);
        let streamed: Vec<_> = cfg.stream(&c).collect();
        assert_eq!(generated.jobs, streamed);
        assert_eq!(cfg.stream(&c).len(), cfg.num_jobs);
    }

    #[test]
    fn durations_respect_bounds() {
        let cfg = HeavyTailConfig::default();
        for j in cfg.stream(&catalog()) {
            let d = j.ideal_runtime();
            // Iteration rounding can push slightly past the exact bounds.
            assert!(d >= cfg.min_duration_s * 0.9, "duration {d}");
            assert!(d <= cfg.max_duration_s * 1.1, "duration {d}");
        }
    }

    #[test]
    fn tail_is_heavier_than_the_bulk() {
        // The defining property: the top decile of jobs carries the
        // majority of total ideal service.
        let t = HeavyTailConfig::default().generate(&catalog());
        let mut service: Vec<f64> = t.jobs.iter().map(|j| j.ideal_gpu_service()).collect();
        service.sort_by(|a, b| a.partial_cmp(b).expect("finite service"));
        let total: f64 = service.iter().sum();
        let top_decile: f64 = service[service.len() * 9 / 10..].iter().sum();
        assert!(
            top_decile > 0.5 * total,
            "top decile carries {:.2} of service",
            top_decile / total
        );
    }

    #[test]
    fn at_load_changes_only_rate() {
        let base = HeavyTailConfig::default();
        let fast = base.at_load(20.0);
        assert_eq!(fast.num_jobs, base.num_jobs);
        assert_eq!(fast.seed, base.seed);
        let d_base: Vec<usize> = base
            .generate(&catalog())
            .jobs
            .iter()
            .map(|j| j.gpu_demand)
            .collect();
        let d_fast: Vec<usize> = fast
            .generate(&catalog())
            .jobs
            .iter()
            .map(|j| j.gpu_demand)
            .collect();
        assert_eq!(d_base, d_fast);
    }

    #[test]
    fn arrival_rate_matches_load() {
        let cfg = HeavyTailConfig {
            num_jobs: 2000,
            jobs_per_hour: 8.0,
            ..Default::default()
        };
        let t = cfg.generate(&catalog());
        let span_hours = t.jobs.last().expect("jobs").arrival / 3600.0;
        let rate = 2000.0 / span_hours;
        assert!((rate - 8.0).abs() < 0.5, "observed rate {rate}");
    }
}
