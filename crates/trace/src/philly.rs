//! Sia-Philly trace regeneration (Section IV-B1).
//!
//! Published characteristics we reproduce: "Sia derives eight traces of 160
//! jobs each, submitted over an 8 hour window at a job arrival rate of 20
//! jobs/hr … 40% of Sia trace jobs are single-GPU jobs, and the largest
//! multi-GPU jobs request up to 48 GPUs", evaluated on a 16-node × 4-GPU
//! cluster. The eight workload variants are eight seeds of the same
//! generator; like the originals, some variants happen to front-load large
//! jobs (the paper's workload 5) and some delay them (workload 3), which
//! drives the spread of policy benefits in Figure 11.

use crate::generator::{exponential, lognormal, weighted_choice};
use crate::job::{JobId, JobSpec, Trace};
use crate::models::ModelCatalog;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the Sia-Philly generator.
#[derive(Debug, Clone)]
pub struct SiaPhillyConfig {
    /// Jobs per trace (paper: 160).
    pub num_jobs: usize,
    /// Arrival rate, jobs per hour (paper: 20).
    pub arrival_rate_per_hour: f64,
    /// Fraction of single-GPU jobs (paper: 0.4).
    pub single_gpu_fraction: f64,
    /// Median ideal job duration, seconds (Philly-like: ~25 minutes).
    pub median_duration_s: f64,
    /// Log-normal sigma of durations (heavy tail).
    pub duration_sigma: f64,
    /// Cap on ideal duration, seconds (Philly jobs are bounded by cluster
    /// policy; the cap keeps a single lognormal straggler from dominating
    /// makespan).
    pub max_duration_s: f64,
}

impl Default for SiaPhillyConfig {
    fn default() -> Self {
        SiaPhillyConfig {
            num_jobs: 160,
            arrival_rate_per_hour: 20.0,
            single_gpu_fraction: 0.40,
            median_duration_s: 1500.0,
            duration_sigma: 1.25,
            max_duration_s: 86_400.0,
        }
    }
}

/// Multi-GPU demand distribution (given the job is multi-GPU): Philly-like
/// power-of-two dominated, capped at 48 ("the largest multi-GPU jobs
/// request up to 48 GPUs").
const MULTI_GPU_DEMANDS: [(usize, f64); 7] = [
    (2, 0.34),
    (4, 0.30),
    (8, 0.18),
    (16, 0.09),
    (24, 0.04),
    (32, 0.03),
    (48, 0.02),
];

impl SiaPhillyConfig {
    /// Generate Sia-Philly workload variant `workload_id` (the paper
    /// numbers them 1–8). Deterministic per `(config, workload_id)`.
    pub fn generate(&self, workload_id: u32, catalog: &ModelCatalog) -> Trace {
        assert!(
            (1..=8).contains(&workload_id),
            "Sia defines workloads 1..=8, got {workload_id}"
        );
        self.generate_seeded(workload_id, 0x51A_0000 + workload_id as u64, catalog)
    }

    /// Generate with an explicit seed (for ablations beyond the eight paper
    /// variants).
    pub fn generate_seeded(&self, workload_id: u32, seed: u64, catalog: &ModelCatalog) -> Trace {
        assert!(!catalog.is_empty(), "empty model catalog");
        let mut rng = StdRng::seed_from_u64(seed);
        let rate_per_s = self.arrival_rate_per_hour / 3600.0;
        let mut t = 0.0;
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let model_weights: Vec<(usize, f64)> = (0..catalog.len()).map(|i| (i, 1.0)).collect();
        for i in 0..self.num_jobs {
            t += exponential(&mut rng, rate_per_s);
            let single = weighted_choice(
                &mut rng,
                &[
                    (true, self.single_gpu_fraction),
                    (false, 1.0 - self.single_gpu_fraction),
                ],
            );
            let gpu_demand = if single {
                1
            } else {
                weighted_choice(&mut rng, &MULTI_GPU_DEMANDS)
            };
            let entry = &catalog.entries()[weighted_choice(&mut rng, &model_weights)];
            // Larger jobs run somewhat longer in Philly; correlate mildly.
            let size_factor = (gpu_demand as f64).powf(0.25);
            let duration = (lognormal(&mut rng, self.median_duration_s, self.duration_sigma)
                * size_factor)
                .min(self.max_duration_s);
            let iterations = (duration / entry.base_iter_time).ceil().max(1.0) as u64;
            jobs.push(JobSpec {
                id: JobId(i as u32),
                model: entry.model,
                class: entry.class,
                arrival: t,
                gpu_demand,
                iterations,
                base_iter_time: entry.base_iter_time,
            });
        }
        Trace::new(format!("sia-philly-{workload_id}"), jobs)
    }

    /// All eight paper variants.
    pub fn generate_all(&self, catalog: &ModelCatalog) -> Vec<Trace> {
        (1..=8).map(|w| self.generate(w, catalog)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pal_gpumodel::GpuSpec;

    fn catalog() -> ModelCatalog {
        ModelCatalog::table2(&GpuSpec::v100())
    }

    #[test]
    fn has_160_jobs() {
        let t = SiaPhillyConfig::default().generate(1, &catalog());
        assert_eq!(t.len(), 160);
    }

    #[test]
    fn single_gpu_fraction_near_forty_percent() {
        // Aggregate over the eight variants to smooth sampling noise.
        let cfg = SiaPhillyConfig::default();
        let c = catalog();
        let traces = cfg.generate_all(&c);
        let total: usize = traces.iter().map(|t| t.len()).sum();
        let singles: usize = traces
            .iter()
            .map(|t| t.jobs.iter().filter(|j| j.gpu_demand == 1).count())
            .sum();
        let frac = singles as f64 / total as f64;
        assert!((frac - 0.40).abs() < 0.06, "single-GPU fraction {frac}");
    }

    #[test]
    fn max_demand_capped_at_48() {
        let c = catalog();
        for t in SiaPhillyConfig::default().generate_all(&c) {
            assert!(t.max_gpu_demand() <= 48);
        }
        // And across all eight variants, someone actually asks for >16 GPUs.
        let any_large = SiaPhillyConfig::default()
            .generate_all(&c)
            .iter()
            .any(|t| t.max_gpu_demand() >= 24);
        assert!(any_large);
    }

    #[test]
    fn arrivals_span_about_eight_hours() {
        let t = SiaPhillyConfig::default().generate(2, &catalog());
        let last = t.jobs.last().unwrap().arrival;
        // 160 jobs at 20/hr: expectation 8h; allow wide Poisson slack.
        assert!(
            (5.0 * 3600.0..12.0 * 3600.0).contains(&last),
            "last arrival {last}"
        );
    }

    #[test]
    fn deterministic_per_variant() {
        let c = catalog();
        let a = SiaPhillyConfig::default().generate(3, &c);
        let b = SiaPhillyConfig::default().generate(3, &c);
        assert_eq!(a, b);
    }

    #[test]
    fn variants_differ() {
        let c = catalog();
        let a = SiaPhillyConfig::default().generate(1, &c);
        let b = SiaPhillyConfig::default().generate(2, &c);
        assert_ne!(a, b);
    }

    #[test]
    fn durations_are_heavy_tailed() {
        let t = SiaPhillyConfig::default().generate(4, &catalog());
        let runtimes: Vec<f64> = t.jobs.iter().map(|j| j.ideal_runtime()).collect();
        let mean = pal_stats::mean(&runtimes).unwrap();
        let med = pal_stats::median(&runtimes).unwrap();
        assert!(
            mean > med,
            "heavy tail: mean {mean} should exceed median {med}"
        );
    }

    #[test]
    #[should_panic(expected = "workloads 1..=8")]
    fn workload_zero_rejected() {
        SiaPhillyConfig::default().generate(0, &catalog());
    }

    #[test]
    fn all_classes_present() {
        let t = SiaPhillyConfig::default().generate(5, &catalog());
        let classes: std::collections::HashSet<usize> = t.jobs.iter().map(|j| j.class.0).collect();
        assert!(classes.len() >= 2, "trace should mix classes");
    }
}
