//! Trace persistence: a simple CSV format so generated traces can be
//! archived, diffed, and replayed (artifact-evaluation style), with no
//! dependencies beyond std.
//!
//! Format: one header line, then one row per job:
//!
//! ```csv
//! id,model,class,arrival,gpu_demand,iterations,base_iter_time
//! 0,resnet50,0,12.5,4,1000,0.0405
//! ```

use crate::job::{JobId, JobSpec, Trace};
use pal_cluster::JobClass;
use pal_gpumodel::Workload;
use std::io::{BufRead, Write};

/// Header line of the trace CSV format.
pub const TRACE_CSV_HEADER: &str = "id,model,class,arrival,gpu_demand,iterations,base_iter_time";

/// Errors from trace (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse(usize, String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "trace parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse(..) => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serialize a trace as CSV.
pub fn write_trace_csv<W: Write>(trace: &Trace, mut out: W) -> Result<(), TraceIoError> {
    writeln!(out, "{TRACE_CSV_HEADER}")?;
    for j in &trace.jobs {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            j.id.0,
            j.model.name(),
            j.class.0,
            j.arrival,
            j.gpu_demand,
            j.iterations,
            j.base_iter_time
        )?;
    }
    Ok(())
}

/// Parse a trace from CSV produced by [`write_trace_csv`].
pub fn read_trace_csv<R: BufRead>(name: &str, input: R) -> Result<Trace, TraceIoError> {
    let mut jobs = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line == TRACE_CSV_HEADER) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(TraceIoError::Parse(
                lineno + 1,
                format!("expected 7 fields, got {}", fields.len()),
            ));
        }
        let parse_err = |what: &str| TraceIoError::Parse(lineno + 1, format!("bad {what}"));
        let job = JobSpec {
            id: JobId(fields[0].parse().map_err(|_| parse_err("id"))?),
            model: Workload::from_name(fields[1])
                .ok_or_else(|| parse_err(&format!("model `{}`", fields[1])))?,
            class: JobClass(fields[2].parse().map_err(|_| parse_err("class"))?),
            arrival: fields[3].parse().map_err(|_| parse_err("arrival"))?,
            gpu_demand: fields[4].parse().map_err(|_| parse_err("gpu_demand"))?,
            iterations: fields[5].parse().map_err(|_| parse_err("iterations"))?,
            base_iter_time: fields[6].parse().map_err(|_| parse_err("base_iter_time"))?,
        };
        job.validate()
            .map_err(|e| TraceIoError::Parse(lineno + 1, e))?;
        jobs.push(job);
    }
    Ok(Trace::new(name, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelCatalog;
    use crate::philly::SiaPhillyConfig;
    use pal_gpumodel::GpuSpec;
    use std::io::BufReader;

    fn sample_trace() -> Trace {
        let catalog = ModelCatalog::table2(&GpuSpec::v100());
        SiaPhillyConfig {
            num_jobs: 25,
            ..Default::default()
        }
        .generate(1, &catalog)
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace_csv(&trace, &mut buf).unwrap();
        let parsed = read_trace_csv(&trace.name, BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn header_only_is_empty_trace() {
        let input = format!("{TRACE_CSV_HEADER}\n");
        let t = read_trace_csv("empty", BufReader::new(input.as_bytes())).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn rejects_wrong_field_count() {
        let input = format!("{TRACE_CSV_HEADER}\n1,resnet50,0,0.0,4\n");
        let err = read_trace_csv("bad", BufReader::new(input.as_bytes())).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(2, _)), "{err}");
    }

    #[test]
    fn rejects_unknown_model() {
        let input = format!("{TRACE_CSV_HEADER}\n0,alexnet,0,0.0,1,100,0.1\n");
        let err = read_trace_csv("bad", BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("alexnet"), "{err}");
    }

    #[test]
    fn rejects_invalid_job() {
        // gpu_demand = 0 parses but fails validation.
        let input = format!("{TRACE_CSV_HEADER}\n0,resnet50,0,0.0,0,100,0.1\n");
        let err = read_trace_csv("bad", BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("zero GPU demand"), "{err}");
    }

    #[test]
    fn blank_lines_ignored() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace_csv(&trace, &mut buf).unwrap();
        let with_blanks = String::from_utf8(buf).unwrap().replace('\n', "\n\n");
        let parsed = read_trace_csv(&trace.name, BufReader::new(with_blanks.as_bytes())).unwrap();
        assert_eq!(parsed.len(), trace.len());
    }
}
