//! # pal-trace
//!
//! Workload traces for the PAL scheduler reproduction.
//!
//! The paper evaluates on two trace families derived from Microsoft's
//! public Philly production traces (Section IV-B):
//!
//! - **Sia-Philly** ([`philly`]): eight traces of 160 jobs each, submitted
//!   over an 8-hour window at 20 jobs/hour, 40 % single-GPU, multi-GPU jobs
//!   up to 48 GPUs, run on a 64-GPU cluster.
//! - **Synergy** ([`synergy`]): Poisson arrivals at a configurable rate
//!   (the job-load sweeps of Figures 14, 16, 17), >80 % single-GPU jobs,
//!   run on a 256-GPU cluster.
//!
//! Beyond the paper's closed-loop training traces, [`serving`] adds
//! open-loop inference request streams (Poisson, bursty/MMPP, diurnal)
//! with per-request SLO deadlines, for the serving subsystem of `pal-sim`.
//!
//! We do not have the original trace files, so both generators are
//! *statistical regenerations* from the published characteristics (job
//! counts, arrival processes, demand distributions, duration scales); see
//! DESIGN.md for the substitution rationale. Generators are deterministic
//! in their seed, and the eight Sia workload variants are eight seeds.

#![warn(missing_docs)]

pub mod generator;
pub mod heavytail;
pub mod import;
pub mod io;
pub mod job;
pub mod models;
pub mod philly;
pub mod serving;
pub mod synergy;

pub use heavytail::{HeavyTailConfig, HeavyTailJobs};
pub use import::{import_csv_trace, ExternalCsvFormat, ImportOptions};
pub use io::{read_trace_csv, write_trace_csv, TraceIoError};
pub use job::{JobId, JobSpec, Trace};
pub use models::ModelCatalog;
pub use philly::SiaPhillyConfig;
pub use serving::{ArrivalProcess, RequestId, RequestStream, ServingRequest, ServingWorkload};
pub use synergy::{SynergyConfig, SynergyJobs};
