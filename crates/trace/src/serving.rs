//! Open-loop inference request workloads.
//!
//! Training traces are *closed-loop*: a job arrives once and runs to
//! completion. Inference serving is *open-loop*: requests keep arriving at
//! a rate the cluster does not control, each carrying a latency SLO.
//! This module generates such request streams — Poisson, bursty (two-state
//! MMPP), and diurnal arrival processes — with per-request work sizes and
//! deadlines, deterministic per seed.
//!
//! A [`ServingWorkload`] is a pure description (cheap to build, immutable,
//! share it via `Arc` across Campaign cells like `Trace`); the actual
//! requests come from [`ServingWorkload::stream`], a lazy iterator, so a
//! million-request stream never needs to be materialized.

use crate::generator::lognormal;
use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense request identifier within one stream (arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// Identifier (arrival order within the stream).
    pub id: RequestId,
    /// Arrival time, seconds from stream start. Strictly increasing.
    pub arrival: f64,
    /// Service demand on a median replica at batch size 1, seconds
    /// (a proxy for token count × per-token latency).
    pub work: f64,
    /// Absolute completion deadline, seconds (`arrival + slo`).
    pub deadline: f64,
}

/// The arrival process of an open-loop request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals: i.i.d. exponential gaps.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
    },
    /// Two-state Markov-modulated Poisson process: the stream alternates
    /// between a base phase and a burst phase, dwelling an exponential
    /// time in each, with Poisson arrivals at the phase's rate.
    Bursty {
        /// Arrival rate in the base phase, requests per second.
        base_rate_per_s: f64,
        /// Arrival rate in the burst phase, requests per second.
        burst_rate_per_s: f64,
        /// Mean dwell time in each phase, seconds.
        mean_dwell_s: f64,
    },
    /// Nonhomogeneous Poisson with a sinusoidal day/night rate:
    /// `rate(t) = mean · (1 + amplitude · sin(2πt / period))`,
    /// sampled by thinning against the peak rate.
    Diurnal {
        /// Time-averaged arrival rate, requests per second.
        mean_rate_per_s: f64,
        /// Relative swing around the mean, in `[0, 1]`.
        amplitude: f64,
        /// Cycle length, seconds.
        period_s: f64,
    },
}

impl ArrivalProcess {
    /// Time-averaged arrival rate, requests per second.
    pub fn mean_rate_per_s(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            // Equal mean dwell in each phase ⇒ half the time at each rate.
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                ..
            } => 0.5 * (base_rate_per_s + burst_rate_per_s),
            // The sinusoid integrates to zero over a period.
            ArrivalProcess::Diurnal {
                mean_rate_per_s, ..
            } => mean_rate_per_s,
        }
    }

    /// Return this process with every rate scaled by `factor` (time
    /// structure — dwell times, period — unchanged).
    pub fn scaled(&self, factor: f64) -> ArrivalProcess {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => ArrivalProcess::Poisson {
                rate_per_s: rate_per_s * factor,
            },
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                mean_dwell_s,
            } => ArrivalProcess::Bursty {
                base_rate_per_s: base_rate_per_s * factor,
                burst_rate_per_s: burst_rate_per_s * factor,
                mean_dwell_s,
            },
            ArrivalProcess::Diurnal {
                mean_rate_per_s,
                amplitude,
                period_s,
            } => ArrivalProcess::Diurnal {
                mean_rate_per_s: mean_rate_per_s * factor,
                amplitude,
                period_s,
            },
        }
    }

    fn validate(&self) -> Result<(), String> {
        let pos = |v: f64, what: &str| {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(format!("{what} must be positive and finite, got {v}"))
            }
        };
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => pos(rate_per_s, "Poisson rate"),
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                mean_dwell_s,
            } => {
                pos(base_rate_per_s, "MMPP base rate")?;
                pos(burst_rate_per_s, "MMPP burst rate")?;
                pos(mean_dwell_s, "MMPP mean dwell")
            }
            ArrivalProcess::Diurnal {
                mean_rate_per_s,
                amplitude,
                period_s,
            } => {
                pos(mean_rate_per_s, "diurnal mean rate")?;
                pos(period_s, "diurnal period")?;
                if (0.0..=1.0).contains(&amplitude) {
                    Ok(())
                } else {
                    Err(format!(
                        "diurnal amplitude must be in [0, 1], got {amplitude}"
                    ))
                }
            }
        }
    }
}

/// An open-loop serving workload: arrival process + request-size model +
/// SLO. Deterministic per seed; immutable, so sweeps should share one via
/// `Arc<ServingWorkload>` rather than cloning per cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingWorkload {
    /// Human-readable workload name (e.g. `chat-poisson-40rps`).
    pub name: String,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of requests in the stream.
    pub num_requests: u64,
    /// Median per-request service demand at batch size 1, seconds.
    pub work_median_s: f64,
    /// Sigma of the log-normal work distribution (0 ⇒ constant work).
    pub work_sigma: f64,
    /// Latency SLO: each request's deadline is its arrival plus this.
    pub slo_s: f64,
    /// Seed for the stream's private generator.
    pub seed: u64,
}

impl ServingWorkload {
    /// Poisson workload with constant-ish request sizes — the common
    /// starting point; adjust fields or use [`ServingWorkload::at_load`]
    /// from there.
    pub fn poisson(name: impl Into<String>, rate_per_s: f64, num_requests: u64) -> Self {
        ServingWorkload {
            name: name.into(),
            arrivals: ArrivalProcess::Poisson { rate_per_s },
            num_requests,
            work_median_s: 0.05,
            work_sigma: 0.3,
            slo_s: 1.0,
            seed: 0,
        }
    }

    /// This workload with arrival rates scaled by `factor` (the load knob
    /// for load × policy sweeps). The seed and size model are unchanged.
    pub fn at_load(&self, factor: f64) -> ServingWorkload {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "load factor must be positive"
        );
        ServingWorkload {
            name: format!("{}@x{factor}", self.name),
            arrivals: self.arrivals.scaled(factor),
            ..self.clone()
        }
    }

    /// Validate parameters; generators and the simulator call this before
    /// streaming.
    pub fn validate(&self) -> Result<(), String> {
        self.arrivals.validate()?;
        if self.num_requests == 0 {
            return Err(format!("{}: zero requests", self.name));
        }
        if !(self.work_median_s > 0.0 && self.work_median_s.is_finite()) {
            return Err(format!("{}: non-positive work median", self.name));
        }
        if !(self.work_sigma >= 0.0 && self.work_sigma.is_finite()) {
            return Err(format!("{}: negative work sigma", self.name));
        }
        if !(self.slo_s > 0.0 && self.slo_s.is_finite()) {
            return Err(format!("{}: non-positive SLO", self.name));
        }
        Ok(())
    }

    /// Lazily generate the request stream. Each call starts an identical
    /// stream (same seed ⇒ same requests, bit for bit).
    pub fn stream(&self) -> RequestStream {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let phase = match self.arrivals {
            ArrivalProcess::Bursty { mean_dwell_s, .. } => {
                // Draw the first phase boundary up front so the phase
                // clock is part of the same seeded stream.
                let end = Exp::new(1.0 / mean_dwell_s).sample(&mut rng);
                Some(MmppPhase {
                    in_burst: false,
                    end,
                })
            }
            _ => None,
        };
        RequestStream {
            arrivals: self.arrivals,
            remaining: self.num_requests,
            work_median_s: self.work_median_s,
            work_sigma: self.work_sigma,
            slo_s: self.slo_s,
            rng,
            t: 0.0,
            next_id: 0,
            phase,
        }
    }
}

#[derive(Debug, Clone)]
struct MmppPhase {
    in_burst: bool,
    end: f64,
}

/// Lazy iterator over a [`ServingWorkload`]'s requests, in arrival order
/// with strictly increasing arrival times.
#[derive(Debug, Clone)]
pub struct RequestStream {
    arrivals: ArrivalProcess,
    remaining: u64,
    work_median_s: f64,
    work_sigma: f64,
    slo_s: f64,
    rng: StdRng,
    t: f64,
    next_id: u64,
    phase: Option<MmppPhase>,
}

impl RequestStream {
    fn next_arrival(&mut self) -> f64 {
        match self.arrivals {
            ArrivalProcess::Poisson { rate_per_s } => {
                self.t += Exp::new(rate_per_s).sample(&mut self.rng);
                self.t
            }
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                mean_dwell_s,
            } => {
                let phase = self.phase.as_mut().expect("MMPP stream has a phase");
                loop {
                    let rate = if phase.in_burst {
                        burst_rate_per_s
                    } else {
                        base_rate_per_s
                    };
                    let cand = self.t + Exp::new(rate).sample(&mut self.rng);
                    if cand <= phase.end {
                        self.t = cand;
                        return self.t;
                    }
                    // Phase flips before the candidate lands. Move to the
                    // boundary and redraw — exponential gaps are
                    // memoryless, so discarding the overshoot is exact.
                    self.t = phase.end;
                    phase.in_burst = !phase.in_burst;
                    phase.end = self.t + Exp::new(1.0 / mean_dwell_s).sample(&mut self.rng);
                }
            }
            ArrivalProcess::Diurnal {
                mean_rate_per_s,
                amplitude,
                period_s,
            } => {
                // Thinning (Lewis–Shedler): propose at the peak rate,
                // accept with probability rate(t) / peak.
                let peak = mean_rate_per_s * (1.0 + amplitude);
                loop {
                    self.t += Exp::new(peak).sample(&mut self.rng);
                    let rate = mean_rate_per_s
                        * (1.0
                            + amplitude * (2.0 * std::f64::consts::PI * self.t / period_s).sin());
                    if self.rng.gen::<f64>() * peak < rate {
                        return self.t;
                    }
                }
            }
        }
    }
}

impl Iterator for RequestStream {
    type Item = ServingRequest;

    fn next(&mut self) -> Option<ServingRequest> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let arrival = self.next_arrival();
        let work = if self.work_sigma == 0.0 {
            self.work_median_s
        } else {
            lognormal(&mut self.rng, self.work_median_s, self.work_sigma)
        };
        let id = RequestId(self.next_id);
        self.next_id += 1;
        Some(ServingRequest {
            id,
            arrival,
            work,
            deadline: arrival + self.slo_s,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RequestStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ServingWorkload {
        ServingWorkload::poisson("w", 50.0, 2_000)
    }

    #[test]
    fn same_seed_same_stream() {
        let w = base();
        let a: Vec<ServingRequest> = w.stream().collect();
        let b: Vec<ServingRequest> = w.stream().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2_000);
    }

    #[test]
    fn different_seed_different_stream() {
        let w = base();
        let mut w2 = base();
        w2.seed = 1;
        assert_ne!(
            w.stream().next().unwrap().arrival,
            w2.stream().next().unwrap().arrival
        );
    }

    #[test]
    fn arrivals_strictly_increase_and_deadlines_offset() {
        for arrivals in [
            ArrivalProcess::Poisson { rate_per_s: 30.0 },
            ArrivalProcess::Bursty {
                base_rate_per_s: 10.0,
                burst_rate_per_s: 100.0,
                mean_dwell_s: 5.0,
            },
            ArrivalProcess::Diurnal {
                mean_rate_per_s: 30.0,
                amplitude: 0.8,
                period_s: 60.0,
            },
        ] {
            let w = ServingWorkload { arrivals, ..base() };
            let mut prev = 0.0;
            for r in w.stream() {
                assert!(r.arrival > prev, "{arrivals:?}: non-increasing arrival");
                assert!(r.work > 0.0);
                assert!((r.deadline - r.arrival - w.slo_s).abs() < 1e-12);
                prev = r.arrival;
            }
        }
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let w = ServingWorkload::poisson("w", 100.0, 50_000);
        let last = w.stream().last().unwrap();
        let rate = 50_000.0 / last.arrival;
        assert!((rate / 100.0 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn bursty_mean_rate_between_phase_rates() {
        let w = ServingWorkload {
            arrivals: ArrivalProcess::Bursty {
                base_rate_per_s: 10.0,
                burst_rate_per_s: 200.0,
                mean_dwell_s: 2.0,
            },
            num_requests: 100_000,
            ..base()
        };
        let last = w.stream().last().unwrap();
        let rate = 100_000.0 / last.arrival;
        assert!(rate > 15.0 && rate < 195.0, "rate {rate}");
    }

    #[test]
    fn diurnal_mean_rate_over_whole_periods() {
        let w = ServingWorkload {
            arrivals: ArrivalProcess::Diurnal {
                mean_rate_per_s: 50.0,
                amplitude: 0.9,
                period_s: 100.0,
            },
            num_requests: 100_000,
            ..base()
        };
        let last = w.stream().last().unwrap();
        // ~2000 s of stream ⇒ ~20 full periods; the mean should hold.
        let rate = 100_000.0 / last.arrival;
        assert!((rate / 50.0 - 1.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn at_load_scales_rates_only() {
        let w = base().at_load(2.0);
        assert_eq!(w.arrivals.mean_rate_per_s(), 100.0);
        assert_eq!(w.seed, 0);
        assert_eq!(w.num_requests, 2_000);
        let b = ServingWorkload {
            arrivals: ArrivalProcess::Bursty {
                base_rate_per_s: 10.0,
                burst_rate_per_s: 100.0,
                mean_dwell_s: 5.0,
            },
            ..base()
        }
        .at_load(0.5);
        match b.arrivals {
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                mean_dwell_s,
            } => {
                assert_eq!(base_rate_per_s, 5.0);
                assert_eq!(burst_rate_per_s, 50.0);
                assert_eq!(mean_dwell_s, 5.0);
            }
            other => panic!("wrong process {other:?}"),
        }
    }

    #[test]
    fn zero_sigma_gives_constant_work() {
        let w = ServingWorkload {
            work_sigma: 0.0,
            ..base()
        };
        assert!(w.stream().all(|r| r.work == w.work_median_s));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(base().validate().is_ok());
        let mut w = base();
        w.num_requests = 0;
        assert!(w.validate().is_err());
        let mut w = base();
        w.slo_s = 0.0;
        assert!(w.validate().is_err());
        let mut w = base();
        w.work_median_s = -1.0;
        assert!(w.validate().is_err());
        let mut w = base();
        w.arrivals = ArrivalProcess::Poisson { rate_per_s: 0.0 };
        assert!(w.validate().is_err());
        let mut w = base();
        w.arrivals = ArrivalProcess::Diurnal {
            mean_rate_per_s: 10.0,
            amplitude: 1.5,
            period_s: 60.0,
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn stream_is_exact_size() {
        let w = base();
        let mut s = w.stream();
        assert_eq!(s.len(), 2_000);
        s.next();
        assert_eq!(s.len(), 1_999);
    }
}
