//! Low-level sampling helpers shared by the trace generators: exponential
//! inter-arrival gaps, log-normal durations, and weighted discrete choice.
//! All deterministic via `StdRng`.

use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::Rng;

/// Sample an exponential random variable with the given rate (events per
/// unit time). Used for Poisson arrival processes. Delegates to the shim's
/// [`Exp`] distribution, which reproduces the exact stream this function
/// historically produced, so seeded traces are unchanged.
pub fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    Exp::new(rate).sample(rng)
}

/// Sample a log-normal random variable with the given median and sigma (of
/// the underlying normal). Philly job durations are famously heavy-tailed;
/// log-normal matches the published duration CDFs well.
pub fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0 && sigma >= 0.0, "bad lognormal parameters");
    let z = standard_normal(rng);
    median * (sigma * z).exp()
}

/// Standard normal via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Weighted choice over `(item, weight)` pairs. Panics on empty input or
/// non-positive total weight.
pub fn weighted_choice<T: Copy>(rng: &mut StdRng, choices: &[(T, f64)]) -> T {
    assert!(!choices.is_empty(), "weighted choice over nothing");
    let total: f64 = choices.iter().map(|&(_, w)| w).sum();
    assert!(total > 0.0, "total weight must be positive");
    let mut target = rng.gen::<f64>() * total;
    for &(item, w) in choices {
        if target < w {
            return item;
        }
        target -= w;
    }
    choices[choices.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = rng(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_always_positive() {
        let mut r = rng(2);
        for _ in 0..1000 {
            assert!(exponential(&mut r, 0.1) > 0.0);
        }
    }

    #[test]
    fn lognormal_median_close() {
        let mut r = rng(3);
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| lognormal(&mut r, 100.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[n / 2];
        assert!((med / 100.0 - 1.0).abs() < 0.05, "median {med}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let mut r = rng(4);
        for _ in 0..10 {
            assert_eq!(lognormal(&mut r, 42.0, 0.0), 42.0);
        }
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng(5);
        let choices = [(0usize, 9.0), (1usize, 1.0)];
        let n = 10_000;
        let ones = (0..n)
            .filter(|_| weighted_choice(&mut r, &choices) == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn weighted_choice_single_item() {
        let mut r = rng(6);
        assert_eq!(weighted_choice(&mut r, &[(7, 1.0)]), 7);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weights_panic() {
        let mut r = rng(7);
        weighted_choice(&mut r, &[(1, 0.0)]);
    }

    #[test]
    fn standard_normal_mean_and_var() {
        let mut r = rng(8);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
