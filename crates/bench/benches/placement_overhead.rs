//! Criterion benchmarks for placement-policy compute time (Figure 18's
//! measurement, at microbenchmark precision): one `place` decision plus a
//! whole epoch's worth of allocations, across cluster sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pal::{PalPlacement, PmFirstPlacement};
use pal_bench::{longhorn_profile, PROFILE_SEED};
use pal_cluster::{ClusterState, ClusterTopology, JobClass, LocalityModel};
use pal_sim::placement::PackedPlacement;
use pal_sim::{Allocation, PlacementCtx, PlacementPolicy, PlacementRequest};
use pal_trace::JobId;
use std::hint::black_box;

fn request(demand: usize) -> PlacementRequest {
    PlacementRequest {
        job: JobId(0),
        model: "resnet50",
        class: JobClass::A,
        gpu_demand: demand,
    }
}

/// Occupy half the cluster so the free list is realistic.
fn half_busy(topo: ClusterTopology) -> ClusterState {
    let mut state = ClusterState::new(topo);
    let gpus: Vec<_> = topo
        .all_gpus()
        .into_iter()
        .filter(|g| g.index() % 2 == 0)
        .collect();
    state.allocate(&gpus);
    state
}

fn bench_single_placement(c: &mut Criterion) {
    let locality = LocalityModel::uniform(1.7);
    let mut group = c.benchmark_group("single_place_4gpu_job");
    for nodes in [16usize, 32, 64] {
        let topo = ClusterTopology::new(nodes, 4);
        let n = topo.total_gpus();
        let profile = longhorn_profile(n, PROFILE_SEED);
        let state = half_busy(topo);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        let mut out: Allocation = Vec::new();
        let mut pal = PalPlacement::new(&profile);
        group.bench_with_input(BenchmarkId::new("PAL", n), &n, |b, _| {
            b.iter(|| {
                pal.place_into(&request(4), &ctx, &state, &mut out);
                black_box(out.len())
            })
        });
        let mut pmf = PmFirstPlacement::new(&profile);
        group.bench_with_input(BenchmarkId::new("PM-First", n), &n, |b, _| {
            b.iter(|| {
                pmf.place_into(&request(4), &ctx, &state, &mut out);
                black_box(out.len())
            })
        });
        let mut packed = PackedPlacement::deterministic();
        group.bench_with_input(BenchmarkId::new("Packed", n), &n, |b, _| {
            b.iter(|| {
                packed.place_into(&request(4), &ctx, &state, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_epoch_allocation(c: &mut Criterion) {
    // A whole epoch: fill an empty cluster with mixed-demand jobs, like the
    // first (worst-case) scheduling round the paper reports.
    let locality = LocalityModel::uniform(1.7);
    let mut group = c.benchmark_group("epoch_fill_cluster");
    for nodes in [16usize, 64] {
        let topo = ClusterTopology::new(nodes, 4);
        let n = topo.total_gpus();
        let profile = longhorn_profile(n, PROFILE_SEED);
        let demands: Vec<usize> = (0..n / 2).map(|i| [1, 1, 2, 4][i % 4]).collect();
        group.bench_with_input(BenchmarkId::new("PAL", n), &n, |b, _| {
            let mut pal = PalPlacement::new(&profile);
            let mut out: Allocation = Vec::new();
            b.iter(|| {
                let mut state = ClusterState::new(topo);
                for &d in &demands {
                    if state.free_count() < d {
                        break;
                    }
                    // Re-borrow the view per decision, as the engine does:
                    // it must reflect the allocations made so far.
                    let ctx = PlacementCtx {
                        profile: &profile,
                        locality: &locality,
                        view: state.view(),
                    };
                    pal.place_into(&request(d), &ctx, &state, &mut out);
                    state.allocate(&out);
                }
                black_box(state.free_count())
            })
        });
    }
    group.finish();
}

fn bench_policy_construction(c: &mut Criterion) {
    // Table construction (binning with silhouette K selection) happens at
    // design time but must stay tractable at scale.
    let mut group = c.benchmark_group("pm_score_table_build");
    for n in [64usize, 256] {
        let profile = longhorn_profile(n, PROFILE_SEED);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(PalPlacement::new(&profile)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_placement,
    bench_epoch_allocation,
    bench_policy_construction
);
criterion_main!(benches);
