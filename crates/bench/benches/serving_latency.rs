//! Criterion benchmark for serving-path throughput: one single-node
//! deployment sustaining a **1-million-request** open-loop Poisson stream
//! end-to-end through the `Scenario` → round stepper → batcher path —
//! the PR 6 acceptance workload.
//!
//! The wall-time group measures how fast the engine chews through the
//! stream (request generation, queueing, batch formation, and latency
//! accounting all sit on this path). Beyond wall time, `main` records the
//! *deterministic* serving outcomes (`served/...`: request/batch counts,
//! SLO attainment, p99 latency, goodput — bit-exact replays of a seeded
//! stream) into `BENCH_engine.json`, where the CI bench gate pins them:
//! a change that silently perturbs the sampler, the batcher's admission
//! rule, or the SLO accounting fails the build even on a noisy runner.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal_cluster::ClusterTopology;
use pal_sim::{BatcherConfig, Scenario, ServingJob, SimResult};
use pal_trace::{ServingWorkload, Trace};

const REQUESTS: u64 = 1_000_000;

/// The acceptance workload: 2 000 req/s offered to 4 single-GPU replicas
/// on one 8-GPU node, 1 ms median work, 250 ms deadline, a 2 ms-overhead
/// batcher filling up to 32 — ≈55 % of batched capacity, so the
/// deployment genuinely sustains the stream (~500 simulated seconds).
fn serving_scenario(num_requests: u64) -> Scenario {
    let workload = ServingWorkload {
        work_median_s: 0.001,
        work_sigma: 0.25,
        slo_s: 0.25,
        ..ServingWorkload::poisson("bench-1m", 2_000.0, num_requests)
    };
    let job = ServingJob::new(workload, 4, 1).batcher(BatcherConfig {
        max_batch_size: 32,
        batch_overhead_s: 0.002,
    });
    Scenario::new(Trace::new("none", vec![]), ClusterTopology::new(1, 8)).serving(job)
}

fn run(num_requests: u64) -> SimResult {
    serving_scenario(num_requests)
        .run()
        .expect("serving bench scenario runs")
}

fn bench_serving_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_run");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("open_loop", "1m_requests"), |b| {
        b.iter(|| {
            let r = run(REQUESTS);
            black_box(r.serving[0].latency_p99)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving_latency);

fn main() {
    benches();
    let mut entries = criterion::take_measurements();
    // Deterministic serving outcomes for the CI gate: the stream is a
    // pure function of its seed, batching is deterministic, and latency
    // percentiles are simulated time — machine-independent by
    // construction.
    let m = &run(REQUESTS).serving[0];
    assert_eq!(m.requests, REQUESTS, "acceptance run must serve the stream");
    entries.push(("served/1m/requests".to_string(), m.requests as f64));
    entries.push(("served/1m/batches".to_string(), m.batches as f64));
    entries.push(("served/1m/slo_attained".to_string(), m.slo_attained as f64));
    entries.push(("served/1m/p99_latency_ms".to_string(), m.latency_p99 * 1e3));
    entries.push(("served/1m/goodput_rps".to_string(), m.goodput()));
    pal_bench::bench_json::update_workspace("serving_latency", &entries)
        .expect("update BENCH_engine.json");
}
