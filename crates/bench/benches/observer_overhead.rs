//! Criterion benchmark for the observability tax: the engine dispatches
//! every measurement through a `MetricsSink` observer, and the contract
//! is that an attached [`NullSink`](pal_sim::NullSink) costs one dead
//! branch per event site — nothing a workload can feel.
//!
//! The wall-time group measures a full non-sticky run (placement every
//! round, so job-lifecycle and round events fire constantly) with no sink
//! and with a `NullSink` attached. Beyond wall time, `main` records the
//! **within-run ratio** of the two (`overhead/null_sink_ratio`, minimum
//! wall time with `NullSink` over minimum without, interleaved so both
//! see the same machine conditions) into `BENCH_engine.json`, where the
//! CI gate pins it within 1.05× of the committed 1.0 baseline: an event
//! site that starts allocating, formatting, or locking on the null path
//! fails the build even on a noisy runner, because the common-mode
//! machine speed cancels out of the ratio. `main` also asserts the
//! observed run is `same_outcome`-identical to the unobserved one —
//! observers must never perturb.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal_cluster::{ClusterTopology, JobClass, VariabilityProfile};
use pal_gpumodel::Workload;
use pal_sim::{NullSink, Scenario, SimResult};
use pal_trace::{JobId, JobSpec, Trace};
use std::time::Instant;

/// Churny non-sticky workload on a 32-GPU cluster: staggered arrivals
/// and mixed demands keep jobs starting, migrating, and finishing, so
/// every observer event site stays hot for the whole run.
fn scenario() -> Scenario {
    let jobs: Vec<JobSpec> = (0..6000)
        .map(|i| JobSpec {
            id: JobId(i),
            model: Workload::ALL[i as usize % Workload::ALL.len()],
            class: JobClass(i as usize % 3),
            arrival: i as f64 * 45.0,
            gpu_demand: 1 + i as usize % 4,
            iterations: 2400 + 300 * (i as u64 % 7),
            base_iter_time: 1.0,
        })
        .collect();
    let scores: Vec<f64> = (0..32).map(|g| 1.0 + 0.02 * (g % 13) as f64).collect();
    Scenario::new(
        Trace::new("observer-bench", jobs),
        ClusterTopology::new(8, 4),
    )
    .profile(VariabilityProfile::from_raw(vec![scores; 3]))
}

fn run(with_null_sink: bool) -> SimResult {
    let mut sim = scenario().start().expect("observer bench scenario runs");
    if with_null_sink {
        sim.attach_sink(Box::new(NullSink));
    }
    sim.run_to_completion()
        .expect("observer bench run completes")
}

fn bench_observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observed_run");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("full_run", "no_sink"), |b| {
        b.iter(|| black_box(run(false).rounds))
    });
    group.bench_function(BenchmarkId::new("full_run", "null_sink"), |b| {
        b.iter(|| black_box(run(true).rounds))
    });
    group.finish();
}

criterion_group!(benches, bench_observer_overhead);

fn main() {
    benches();
    let mut entries = criterion::take_measurements();

    // Observers must not perturb: the observed run's outcome is the
    // unobserved run's, bit for bit.
    let plain = run(false);
    assert!(
        plain.same_outcome(&run(true)),
        "NullSink perturbed the simulation outcome"
    );

    // The gated ratio: interleave the two configurations so they share
    // machine conditions, take each side's minimum (the standard
    // noise-robust wall-time estimator), and record null-sink over
    // no-sink. Ideal is 1.0; the gate fails past 1.05.
    const REPS: usize = 12;
    let mut no_sink = f64::INFINITY;
    let mut null_sink = f64::INFINITY;
    run(false); // warm-up
    run(true);
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(run(false).rounds);
        no_sink = no_sink.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(run(true).rounds);
        null_sink = null_sink.min(t.elapsed().as_secs_f64());
    }
    entries.push(("overhead/null_sink_ratio".to_string(), null_sink / no_sink));
    pal_bench::bench_json::update_workspace("observer_overhead", &entries)
        .expect("update BENCH_engine.json");
}
