//! Criterion benchmark for fleet-scale campaign execution: a 16×16 grid
//! (256 cells) driven through the work-stealing runner, measuring grid
//! wall time and pinning deterministic cells-completed counts.
//!
//! The grid deliberately skews per-cell cost (scenario rows carry
//! different trace sizes), so the contiguous-chunk initial distribution
//! is unbalanced and the steal-half path actually runs — the wall-time
//! entry `grid/16x16/run_with_sink` tracks what fleet sweeps cost
//! end-to-end, runner included.
//!
//! Beyond wall time, `main` records *deterministic* counts into
//! `BENCH_engine.json` under the `cells/` prefix the CI gate pins
//! bit-exactly:
//!
//! - `cells/16x16/completed`: every cell of a full run reaches the sink
//!   exactly once (a cell running twice fails the gate; a dropped cell
//!   fails this bench's own assertion, and CI with it);
//! - `cells/16x16/resumed_after_128`: a simulated resume skipping the
//!   first half of the grid runs exactly the other half.
//!
//! Worker count is pinned with `max_parallelism(8)` so the counts and
//! the execution path (32 cells/worker ≥ the steal threshold) do not
//! depend on the runner machine's core count.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal_cluster::{ClusterTopology, JobClass, VariabilityProfile};
use pal_gpumodel::Workload;
use pal_sim::placement::{PackedPlacement, RandomPlacement};
use pal_sim::sched::Fifo;
use pal_sim::{Campaign, MemorySink, PolicySpec, Scenario};
use pal_trace::{JobId, JobSpec, Trace};
use std::sync::Arc;

/// Workers the grid is pinned to, independent of the machine.
const WORKERS: usize = 8;

/// A small trace whose size grows with the scenario row, skewing
/// per-cell cost so the work-stealing queue has imbalance to fix.
fn row_trace(row: usize) -> Trace {
    let jobs = 4 + 2 * row; // rows 0..16 → 4..36 jobs
    Trace::new(
        format!("fleet-row-{row}"),
        (0..jobs as u32)
            .map(|i| JobSpec {
                id: JobId(i),
                model: Workload::ResNet50,
                class: JobClass(i as usize % 3),
                arrival: i as f64 * 150.0,
                gpu_demand: 1 + (i as usize % 3),
                iterations: 200 + 40 * i as u64,
                base_iter_time: 1.0,
            })
            .collect(),
    )
}

/// The 16×16 grid: 16 scenario rows of increasing cost × 16 seed-varied
/// policy columns, all rows sharing one `Arc`'d profile.
fn grid_campaign() -> Campaign {
    let profile = Arc::new(VariabilityProfile::from_raw(
        (0..3)
            .map(|c| {
                (0..8)
                    .map(|g| 1.0 + ((g * 7 + c * 5) % 11) as f64 * 0.05)
                    .collect()
            })
            .collect(),
    ));
    let mut campaign = Campaign::new().seed(0xF1EE7).max_parallelism(WORKERS);
    for row in 0..16 {
        let trace = Arc::new(row_trace(row));
        let profile = Arc::clone(&profile);
        campaign = campaign.scenario(format!("row-{row:02}"), move || {
            Scenario::new(Arc::clone(&trace), ClusterTopology::new(2, 4))
                .profile(Arc::clone(&profile))
                .scheduler(Fifo)
        });
    }
    campaign.policies((0..16).map(|col| {
        let name = format!("col-{col:02}");
        if col % 2 == 0 {
            PolicySpec::new(name, |_, seed| Box::new(RandomPlacement::new(seed)))
        } else {
            PolicySpec::new(name, |_, seed| Box::new(PackedPlacement::randomized(seed)))
                .sticky(col % 4 == 1)
        }
    }))
}

fn bench_grid(c: &mut Criterion) {
    let campaign = grid_campaign();
    let mut group = c.benchmark_group("grid");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("16x16", "run_with_sink"), |b| {
        b.iter(|| {
            let sink = MemorySink::new(campaign.num_cells());
            let stats = campaign.run_with_sink(&sink).expect("bench campaign");
            assert_eq!(stats.cells_run, 256, "grid lost cells mid-run");
            black_box(stats.steals)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grid);

fn main() {
    benches();
    let mut entries = criterion::take_measurements();
    let campaign = grid_campaign();

    // Deterministic cells-completed counts for the CI gate, independent
    // of machine speed and core count (workers are pinned). A full run
    // completes all 256 cells exactly once; a resume that skips the
    // first half runs exactly the other 128.
    let sink = MemorySink::new(campaign.num_cells());
    let stats = campaign.run_with_sink(&sink).expect("accounting run");
    assert_eq!(stats.workers, WORKERS, "worker pin did not take");
    assert_eq!(stats.cells_run, 256, "full grid must complete every cell");
    let completed = sink
        .into_results()
        .into_iter()
        .filter(|slot| slot.is_some())
        .count();
    assert_eq!(completed, 256, "sink slots must all fill exactly once");
    entries.push(("cells/16x16/completed".to_string(), completed as f64));

    let resume_sink = MemorySink::new(campaign.num_cells());
    let resumed = campaign
        .run_cells_with_sink(&|cell| cell < 128, &resume_sink)
        .expect("resume accounting run");
    assert_eq!(resumed.cells_skipped, 128);
    entries.push((
        "cells/16x16/resumed_after_128".to_string(),
        resumed.cells_run as f64,
    ));

    pal_bench::bench_json::update_workspace("campaign_throughput", &entries)
        .expect("update BENCH_engine.json");
}
