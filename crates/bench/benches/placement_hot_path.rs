//! The placement hot path at saturation: one `place_into` decision for
//! PAL vs PM-First vs Packed on a nearly full cluster, across cluster
//! sizes — the exact code the engine times for Figure 18.
//!
//! Beyond wall-clock timings, this bench runs under a counting global
//! allocator and *asserts* the PR-3 redesign's core claim: after warmup
//! (class orderings built, scratch buffers grown), `place_into` performs
//! **zero heap allocations per call** for every policy. The measured
//! allocs/call are merged into the repo-root `BENCH_engine.json`
//! alongside the timings (section `placement_hot_path`).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal::{PalPlacement, PmFirstPlacement};
use pal_bench::{longhorn_profile, PROFILE_SEED};
use pal_cluster::{ClusterState, ClusterTopology, GpuId, JobClass, LocalityModel};
use pal_sim::placement::{PackedPlacement, RandomPlacement};
use pal_sim::{Allocation, PlacementCtx, PlacementPolicy, PlacementRequest};
use pal_trace::JobId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every alloc/realloc (frees excluded:
/// the claim under test is that the hot path *acquires* no memory).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn request(demand: usize) -> PlacementRequest {
    PlacementRequest {
        job: JobId(0),
        model: "resnet50",
        class: JobClass::A,
        gpu_demand: demand,
    }
}

/// Saturated occupancy: 3 of every 4 GPUs busy, holes scattered across
/// nodes — the regime where per-decision free-list rebuilds used to hurt
/// most (many nodes, small free lists).
fn saturated(topo: ClusterTopology) -> ClusterState {
    let mut state = ClusterState::new(topo);
    let gpus: Vec<GpuId> = topo
        .all_gpus()
        .into_iter()
        .filter(|g| g.index() % 4 != 3)
        .collect();
    state.allocate(&gpus);
    state
}

/// The policy lineup of the bench (paper policies + baselines), with
/// unambiguous labels (both Packed modes report `name() == "Packed"`).
fn policies(
    profile: &pal_cluster::VariabilityProfile,
) -> Vec<(&'static str, Box<dyn PlacementPolicy>)> {
    vec![
        ("PAL", Box::new(PalPlacement::new(profile))),
        ("PM-First", Box::new(PmFirstPlacement::new(profile))),
        ("Packed-det", Box::new(PackedPlacement::deterministic())),
        ("Packed-rand", Box::new(PackedPlacement::randomized(17))),
        ("Random", Box::new(RandomPlacement::new(17))),
    ]
}

fn bench_single_place(c: &mut Criterion) {
    let locality = LocalityModel::uniform(1.7);
    let mut group = c.benchmark_group("single_place");
    for nodes in [16usize, 64] {
        let topo = ClusterTopology::new(nodes, 4);
        let n = topo.total_gpus();
        let profile = longhorn_profile(n, PROFILE_SEED);
        let state = saturated(topo);
        let ctx = PlacementCtx {
            profile: &profile,
            locality: &locality,
            view: state.view(),
        };
        for (label, mut policy) in policies(&profile) {
            let mut out: Allocation = Vec::new();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    policy.place_into(&request(4), &ctx, &state, &mut out);
                    black_box(out.len())
                })
            });
        }
    }
    group.finish();
}

/// Post-warmup allocation counts: `place_into` must not touch the heap.
/// Reported per policy (allocs per 1000 calls, so flakiness would show as
/// a fraction) and asserted to be exactly zero.
fn check_zero_allocations() -> Vec<(String, f64)> {
    const CALLS: u64 = 1000;
    let locality = LocalityModel::uniform(1.7);
    let topo = ClusterTopology::new(64, 4);
    let profile = longhorn_profile(topo.total_gpus(), PROFILE_SEED);
    let state = saturated(topo);
    let ctx = PlacementCtx {
        profile: &profile,
        locality: &locality,
        view: state.view(),
    };
    let mut results = Vec::new();
    for (label, mut policy) in policies(&profile) {
        let mut out: Allocation = Vec::new();
        // Warmup: builds lazy class orderings and grows every scratch
        // buffer to steady-state capacity.
        for _ in 0..16 {
            policy.place_into(&request(4), &ctx, &state, &mut out);
        }
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..CALLS {
            policy.place_into(&request(4), &ctx, &state, &mut out);
            black_box(out.len());
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        println!("allocs_per_place/{label}: {allocs} allocations across {CALLS} calls");
        assert_eq!(allocs, 0, "{label} allocated on the placement hot path");
        results.push((format!("allocs_per_place/{label}"), allocs as f64));
    }
    results
}

criterion_group!(benches, bench_single_place);

fn main() {
    benches();
    let mut measurements = criterion::take_measurements();
    measurements.extend(check_zero_allocations());
    pal_bench::bench_json::update_workspace("placement_hot_path", &measurements)
        .expect("update BENCH_engine.json");
}
