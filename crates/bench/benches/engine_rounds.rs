//! Criterion benchmark for raw engine throughput: scheduling rounds per
//! second on Synergy-generated traces over the paper's 256-GPU cluster,
//! at a low (4 jobs/hour) and a high (14 jobs/hour, past saturation)
//! arrival rate.
//!
//! This pins the perf trajectory of the round loop itself: the PR 2
//! engine decomposition (allocation-free stepper, cached-key scheduling
//! sort, incremental active queue) must keep ≥2× the seed engine's
//! rounds/sec at the high rate, and future engine work lands its speedup
//! here. The high-rate case is the interesting one — hundreds of jobs
//! are active at once, so per-round costs that scale with the active
//! queue dominate.
//!
//! The `engine_sticky_drain` group covers event-driven round skipping
//! (PR 4) on the workload it exists for — a burst of long jobs draining
//! under sticky placement — in both modes. Beyond wall time, `main`
//! records the simulated and *executed* round counts of both modes into
//! `BENCH_engine.json` (`rounds/sticky_drain/...`), where the CI bench
//! gate watches the skip win.
//!
//! `main` also drives the **large-scale cohort workloads** (1k jobs /
//! 100 GPUs up to 100k jobs / 10k GPUs) through all three stepping
//! modes — the event-queue core, the compat stepper with round
//! skipping, and the plain fixed-round compat stepper — recording per
//! size the simulated round count, each mode's executed (dispatched)
//! round count (`rounds/large_*`, deterministically gated), wall times,
//! and peak RSS (`mem/*`, informational). The workload is built so the
//! modes separate: cohorts of identical single-GPU jobs arrive at
//! irregular multi-round gaps, so each cohort's completions land in one
//! round (few event boundaries for the core), while a sparse set of 3×
//! slow GPUs seeds long-running stragglers that later cohorts' SRTF
//! keys overtake at staggered rounds — in-prefix order changes the core
//! replays through but the skip mode must execute. The 100k-size run
//! asserts the tentpole acceptance: the core dispatches ≥5× fewer
//! rounds than compat mode executes.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal_cluster::{ClusterTopology, LocalityModel, VariabilityProfile};
use pal_gpumodel::GpuSpec;
use pal_sim::placement::PackedPlacement;
use pal_sim::sched::{Las, Srtf};
use pal_sim::{Scenario, StepOutcome};
use pal_trace::{JobId, JobSpec, ModelCatalog, SynergyConfig, Trace};
use std::sync::Arc;
use std::time::Instant;

/// Deterministic non-flat 3-class profile sized to the cluster (profile
/// synthesis is not what this bench measures, so keep it cheap) — built
/// once per bench and shared by `Arc` handle.
fn profile(gpus: usize) -> Arc<VariabilityProfile> {
    Arc::new(VariabilityProfile::from_raw(
        (0..3)
            .map(|c| {
                (0..gpus)
                    .map(|g| 1.0 + ((g * 7 + c * 13) % 10) as f64 * 0.05)
                    .collect()
            })
            .collect(),
    ))
}

fn synergy_trace(jobs_per_hour: f64) -> Arc<Trace> {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    Arc::new(
        SynergyConfig {
            num_jobs: 300,
            jobs_per_hour,
            ..Default::default()
        }
        .generate(&catalog),
    )
}

/// Scenarios share the trace and profile by `Arc` handle, so the
/// measured loop starts each run without re-copying the 300-job trace or
/// re-synthesizing the profile.
fn scenario(
    trace: &Arc<Trace>,
    profile: &Arc<VariabilityProfile>,
    topo: ClusterTopology,
) -> Scenario {
    Scenario::new(Arc::clone(trace), topo)
        .profile(Arc::clone(profile))
        .locality(LocalityModel::uniform(1.5))
        .scheduler(Las::default())
}

/// The event-driven skip's home turf: 48 long jobs arriving in a burst
/// (~3 rounds), then draining for thousands of rounds under sticky
/// placement with no queue changes between completions.
fn sticky_drain_trace() -> Arc<Trace> {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    Arc::new(
        SynergyConfig {
            num_jobs: 48,
            jobs_per_hour: 240.0,
            median_duration_s: 250_000.0,
            ..Default::default()
        }
        .generate(&catalog),
    )
}

/// Topology for the drain workload: small enough that the burst
/// oversubscribes it into several waves.
fn drain_topology() -> ClusterTopology {
    ClusterTopology::new(8, 4)
}

fn drain_scenario(
    trace: &Arc<Trace>,
    profile: &Arc<VariabilityProfile>,
    event_driven: bool,
) -> Scenario {
    scenario(trace, profile, drain_topology())
        .sticky(true)
        .event_driven(event_driven)
}

fn bench_full_run(c: &mut Criterion) {
    let topo = ClusterTopology::new(64, 4);
    let prof = profile(topo.total_gpus());
    let mut group = c.benchmark_group("engine_full_run");
    group.sample_size(10);
    for (label, rate) in [("low_4jph", 4.0), ("high_14jph", 14.0)] {
        let trace = synergy_trace(rate);
        group.bench_with_input(BenchmarkId::new("synergy_300jobs", label), &rate, |b, _| {
            b.iter(|| {
                let r = scenario(&trace, &prof, topo).run().expect("bench run");
                black_box(r.rounds)
            })
        });
    }
    group.finish();
}

fn bench_single_steps(c: &mut Criterion) {
    // Per-round cost at saturation: warm a stepper into the congested
    // regime once, then measure individual `step()` calls (restarting
    // when the run completes). This is the allocation-free hot path.
    let topo = ClusterTopology::new(64, 4);
    let prof = profile(topo.total_gpus());
    let trace = synergy_trace(14.0);
    let mut group = c.benchmark_group("engine_step");
    let mut sim = scenario(&trace, &prof, topo)
        .start()
        .expect("bench scenario");
    for _ in 0..200 {
        sim.step().expect("warmup step");
    }
    group.bench_function("saturated_round", |b| {
        b.iter(|| {
            if sim.step().expect("bench step") == StepOutcome::Complete {
                sim = scenario(&trace, &prof, topo)
                    .start()
                    .expect("bench scenario");
                for _ in 0..200 {
                    sim.step().expect("warmup step");
                }
            }
            black_box(sim.rounds())
        })
    });
    group.finish();
}

fn bench_sticky_drain(c: &mut Criterion) {
    let trace = sticky_drain_trace();
    let prof = profile(drain_topology().total_gpus());
    let mut group = c.benchmark_group("engine_sticky_drain");
    group.sample_size(10);
    for (label, event_driven) in [("event_on", true), ("event_off", false)] {
        group.bench_with_input(
            BenchmarkId::new("drain_48jobs", label),
            &event_driven,
            |b, &event_driven| {
                b.iter(|| {
                    let r = drain_scenario(&trace, &prof, event_driven)
                        .run()
                        .expect("bench run");
                    black_box(r.executed_rounds)
                })
            },
        );
    }
    group.finish();
}

/// Ideal single-GPU duration of every large-workload job, seconds:
/// exactly 200 rounds on a nominal GPU, 600 on a 3×-slow one, so a
/// cohort's completions collapse into one round per speed class.
const LARGE_IDEAL_S: f64 = 60_000.0;

/// GPUs with `g % SLOW_GPU_PERIOD == 1` run 3× slow: rare enough that
/// stragglers stay a small minority (cheap for the core's kinetic
/// reorder), common enough that some are always in flight.
const SLOW_GPU_PERIOD: usize = 64;

/// The large-workload sizes: jobs, nodes (× 4 GPUs), and cohort size.
/// Cohorts are ~1/16 of cluster capacity so ~10 cohorts of mostly
/// 200-round jobs arriving every ~20 rounds keep the cluster ~65 %
/// busy — everything runs on arrival, so the only prefix-set changes
/// are arrivals and completions.
const LARGE_SCALES: &[(&str, usize, usize, usize)] = &[
    ("large_1k", 1_000, 25, 6),
    ("large_10k", 10_000, 250, 62),
    ("large_100k", 100_000, 2_500, 625),
];

/// Cohort trace: `num_jobs` identical single-GPU jobs arriving in
/// cohorts of `cohort`, successive cohorts spaced an irregular 17–23
/// rounds apart (irregular so the straggler-overtake rounds spread out
/// instead of landing on a common multiple). Built through the
/// streaming constructor: the only allocation is the trace's own job
/// vector.
fn cohort_trace(num_jobs: usize, cohort: usize) -> Arc<Trace> {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let entry = &catalog.entries()[0];
    let (model, class, base_iter_time) = (entry.model, entry.class, entry.base_iter_time);
    let iterations = (LARGE_IDEAL_S / base_iter_time).ceil().max(1.0) as u64;
    let jobs = (0..num_jobs).scan(0usize, move |start_round, i| {
        let c = i / cohort;
        if c > 0 && i % cohort == 0 {
            *start_round += 17 + (c - 1) * 5 % 7;
        }
        Some(JobSpec {
            id: JobId(i as u32),
            model,
            class,
            arrival: (*start_round * 300) as f64,
            gpu_demand: 1,
            iterations,
            base_iter_time,
        })
    });
    Arc::new(Trace::from_sorted_stream(
        format!("cohorts-{num_jobs}"),
        jobs,
    ))
}

/// Two-speed profile for the large workloads: nominal GPUs at 1.0 and
/// every [`SLOW_GPU_PERIOD`]-th at 3.0, identically across classes —
/// quantized so same-cohort, same-speed jobs finish in the same round.
fn quantized_profile(gpus: usize) -> Arc<VariabilityProfile> {
    Arc::new(VariabilityProfile::from_raw(
        (0..3)
            .map(|_| {
                (0..gpus)
                    .map(|g| if g % SLOW_GPU_PERIOD == 1 { 3.0 } else { 1.0 })
                    .collect()
            })
            .collect(),
    ))
}

/// The three stepping modes the large benches compare.
#[derive(Clone, Copy)]
enum Stepping {
    /// Discrete-event core (`SimConfig::event_core`).
    EventCore,
    /// Compat stepper with provably-stable round skipping.
    CompatSkip,
    /// Plain fixed-round compat stepper.
    CompatFixed,
}

impl Stepping {
    fn label(self) -> &'static str {
        match self {
            Stepping::EventCore => "event_core",
            Stepping::CompatSkip => "compat_skip",
            Stepping::CompatFixed => "compat_fixed",
        }
    }
}

fn large_scenario(
    trace: &Arc<Trace>,
    profile: &Arc<VariabilityProfile>,
    topo: ClusterTopology,
    mode: Stepping,
) -> Scenario {
    let s = Scenario::new(Arc::clone(trace), topo)
        .profile(Arc::clone(profile))
        .locality(LocalityModel::uniform(1.5))
        .scheduler(Srtf)
        .placement(PackedPlacement::deterministic())
        .sticky(true);
    match mode {
        Stepping::EventCore => s.event_core(true),
        Stepping::CompatSkip => s.event_driven(true),
        Stepping::CompatFixed => s.event_driven(false),
    }
}

/// Run the large cohort workloads through all three modes, appending
/// round-count, wall-time, and peak-RSS entries; asserts the tentpole
/// dispatch win at the 100k size.
fn large_scale_accounting(entries: &mut Vec<(String, f64)>) {
    for &(label, num_jobs, nodes, cohort) in LARGE_SCALES {
        let topo = ClusterTopology::new(nodes, 4);
        let prof = quantized_profile(topo.total_gpus());
        let trace = cohort_trace(num_jobs, cohort);
        let mut executed = [0usize; 3];
        let mut simulated = [0usize; 3];
        for (i, mode) in [
            Stepping::EventCore,
            Stepping::CompatSkip,
            Stepping::CompatFixed,
        ]
        .into_iter()
        .enumerate()
        {
            pal_bench::memory::reset_peak_rss();
            let start = Instant::now();
            let r = large_scenario(&trace, &prof, topo, mode)
                .run()
                .expect("large-scale run");
            let wall = start.elapsed();
            executed[i] = r.executed_rounds;
            simulated[i] = r.rounds;
            entries.push((
                format!("rounds/{label}/executed_{}", mode.label()),
                r.executed_rounds as f64,
            ));
            entries.push((
                format!("large_run/{label}/{}", mode.label()),
                wall.as_nanos() as f64,
            ));
            if let Some(mib) = pal_bench::memory::peak_rss_mib() {
                entries.push((format!("mem/peak_rss_mb/{label}_{}", mode.label()), mib));
            }
        }
        eprintln!(
            "{label}: {} simulated rounds; executed event_core {} / compat_skip {} / compat_fixed {}",
            simulated[0], executed[0], executed[1], executed[2]
        );
        // All three modes simulate the same virtual-time span.
        assert_eq!(
            simulated[0], simulated[1],
            "{label}: simulated rounds differ"
        );
        assert_eq!(
            simulated[0], simulated[2],
            "{label}: simulated rounds differ"
        );
        entries.push((format!("rounds/{label}/simulated"), simulated[0] as f64));
        if label == "large_100k" {
            // Tentpole acceptance: at 100k jobs / 10k GPUs the event
            // core dispatches ≥5× fewer rounds than compat mode executes.
            assert!(
                executed[2] >= 5 * executed[0],
                "event core dispatched {} rounds vs compat's {} (< 5x win)",
                executed[0],
                executed[2]
            );
            // And it must beat PR 4's skip mode with real margin: the
            // in-prefix order changes skipping bails on are replayed.
            assert!(
                executed[1] >= 2 * executed[0],
                "event core dispatched {} rounds vs skip mode's {} (< 2x win)",
                executed[0],
                executed[1]
            );
        }
    }
}

criterion_group!(
    benches,
    bench_full_run,
    bench_single_steps,
    bench_sticky_drain
);

fn main() {
    benches();
    let mut entries = criterion::take_measurements();
    // Beyond wall time, record the round counts of both stepping modes:
    // the skip win is `executed_event_off / executed_event_on` (simulated
    // counts are bit-identical by construction), and the CI bench gate
    // fails the build if the executed count regresses.
    let trace = sticky_drain_trace();
    let prof = profile(drain_topology().total_gpus());
    for (label, event_driven) in [("event_on", true), ("event_off", false)] {
        let r = drain_scenario(&trace, &prof, event_driven)
            .run()
            .expect("rounds-accounting run");
        entries.push((
            format!("rounds/sticky_drain/simulated_{label}"),
            r.rounds as f64,
        ));
        entries.push((
            format!("rounds/sticky_drain/executed_{label}"),
            r.executed_rounds as f64,
        ));
    }
    large_scale_accounting(&mut entries);
    pal_bench::bench_json::update_workspace("engine_rounds", &entries)
        .expect("update BENCH_engine.json");
}
