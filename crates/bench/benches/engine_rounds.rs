//! Criterion benchmark for raw engine throughput: scheduling rounds per
//! second on Synergy-generated traces over the paper's 256-GPU cluster,
//! at a low (4 jobs/hour) and a high (14 jobs/hour, past saturation)
//! arrival rate.
//!
//! This pins the perf trajectory of the round loop itself: the PR 2
//! engine decomposition (allocation-free stepper, cached-key scheduling
//! sort, incremental active queue) must keep ≥2× the seed engine's
//! rounds/sec at the high rate, and future engine work lands its speedup
//! here. The high-rate case is the interesting one — hundreds of jobs
//! are active at once, so per-round costs that scale with the active
//! queue dominate.
//!
//! The `engine_sticky_drain` group covers event-driven round skipping
//! (PR 4) on the workload it exists for — a burst of long jobs draining
//! under sticky placement — in both modes. Beyond wall time, `main`
//! records the simulated and *executed* round counts of both modes into
//! `BENCH_engine.json` (`rounds/sticky_drain/...`), where the CI bench
//! gate watches the skip win.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal_cluster::{ClusterTopology, LocalityModel, VariabilityProfile};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Las;
use pal_sim::{Scenario, StepOutcome};
use pal_trace::{ModelCatalog, SynergyConfig, Trace};
use std::sync::Arc;

/// Deterministic non-flat 3-class profile sized to the cluster (profile
/// synthesis is not what this bench measures, so keep it cheap) — built
/// once per bench and shared by `Arc` handle.
fn profile(gpus: usize) -> Arc<VariabilityProfile> {
    Arc::new(VariabilityProfile::from_raw(
        (0..3)
            .map(|c| {
                (0..gpus)
                    .map(|g| 1.0 + ((g * 7 + c * 13) % 10) as f64 * 0.05)
                    .collect()
            })
            .collect(),
    ))
}

fn synergy_trace(jobs_per_hour: f64) -> Arc<Trace> {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    Arc::new(
        SynergyConfig {
            num_jobs: 300,
            jobs_per_hour,
            ..Default::default()
        }
        .generate(&catalog),
    )
}

/// Scenarios share the trace and profile by `Arc` handle, so the
/// measured loop starts each run without re-copying the 300-job trace or
/// re-synthesizing the profile.
fn scenario(
    trace: &Arc<Trace>,
    profile: &Arc<VariabilityProfile>,
    topo: ClusterTopology,
) -> Scenario {
    Scenario::new(Arc::clone(trace), topo)
        .profile(Arc::clone(profile))
        .locality(LocalityModel::uniform(1.5))
        .scheduler(Las::default())
}

/// The event-driven skip's home turf: 48 long jobs arriving in a burst
/// (~3 rounds), then draining for thousands of rounds under sticky
/// placement with no queue changes between completions.
fn sticky_drain_trace() -> Arc<Trace> {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    Arc::new(
        SynergyConfig {
            num_jobs: 48,
            jobs_per_hour: 240.0,
            median_duration_s: 250_000.0,
            ..Default::default()
        }
        .generate(&catalog),
    )
}

/// Topology for the drain workload: small enough that the burst
/// oversubscribes it into several waves.
fn drain_topology() -> ClusterTopology {
    ClusterTopology::new(8, 4)
}

fn drain_scenario(
    trace: &Arc<Trace>,
    profile: &Arc<VariabilityProfile>,
    event_driven: bool,
) -> Scenario {
    scenario(trace, profile, drain_topology())
        .sticky(true)
        .event_driven(event_driven)
}

fn bench_full_run(c: &mut Criterion) {
    let topo = ClusterTopology::new(64, 4);
    let prof = profile(topo.total_gpus());
    let mut group = c.benchmark_group("engine_full_run");
    group.sample_size(10);
    for (label, rate) in [("low_4jph", 4.0), ("high_14jph", 14.0)] {
        let trace = synergy_trace(rate);
        group.bench_with_input(BenchmarkId::new("synergy_300jobs", label), &rate, |b, _| {
            b.iter(|| {
                let r = scenario(&trace, &prof, topo).run().expect("bench run");
                black_box(r.rounds)
            })
        });
    }
    group.finish();
}

fn bench_single_steps(c: &mut Criterion) {
    // Per-round cost at saturation: warm a stepper into the congested
    // regime once, then measure individual `step()` calls (restarting
    // when the run completes). This is the allocation-free hot path.
    let topo = ClusterTopology::new(64, 4);
    let prof = profile(topo.total_gpus());
    let trace = synergy_trace(14.0);
    let mut group = c.benchmark_group("engine_step");
    let mut sim = scenario(&trace, &prof, topo)
        .start()
        .expect("bench scenario");
    for _ in 0..200 {
        sim.step().expect("warmup step");
    }
    group.bench_function("saturated_round", |b| {
        b.iter(|| {
            if sim.step().expect("bench step") == StepOutcome::Complete {
                sim = scenario(&trace, &prof, topo)
                    .start()
                    .expect("bench scenario");
                for _ in 0..200 {
                    sim.step().expect("warmup step");
                }
            }
            black_box(sim.rounds())
        })
    });
    group.finish();
}

fn bench_sticky_drain(c: &mut Criterion) {
    let trace = sticky_drain_trace();
    let prof = profile(drain_topology().total_gpus());
    let mut group = c.benchmark_group("engine_sticky_drain");
    group.sample_size(10);
    for (label, event_driven) in [("event_on", true), ("event_off", false)] {
        group.bench_with_input(
            BenchmarkId::new("drain_48jobs", label),
            &event_driven,
            |b, &event_driven| {
                b.iter(|| {
                    let r = drain_scenario(&trace, &prof, event_driven)
                        .run()
                        .expect("bench run");
                    black_box(r.executed_rounds)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_run,
    bench_single_steps,
    bench_sticky_drain
);

fn main() {
    benches();
    let mut entries = criterion::take_measurements();
    // Beyond wall time, record the round counts of both stepping modes:
    // the skip win is `executed_event_off / executed_event_on` (simulated
    // counts are bit-identical by construction), and the CI bench gate
    // fails the build if the executed count regresses.
    let trace = sticky_drain_trace();
    let prof = profile(drain_topology().total_gpus());
    for (label, event_driven) in [("event_on", true), ("event_off", false)] {
        let r = drain_scenario(&trace, &prof, event_driven)
            .run()
            .expect("rounds-accounting run");
        entries.push((
            format!("rounds/sticky_drain/simulated_{label}"),
            r.rounds as f64,
        ));
        entries.push((
            format!("rounds/sticky_drain/executed_{label}"),
            r.executed_rounds as f64,
        ));
    }
    pal_bench::bench_json::update_workspace("engine_rounds", &entries)
        .expect("update BENCH_engine.json");
}
