//! Criterion benchmark for raw engine throughput: scheduling rounds per
//! second on Synergy-generated traces over the paper's 256-GPU cluster,
//! at a low (4 jobs/hour) and a high (14 jobs/hour, past saturation)
//! arrival rate.
//!
//! This pins the perf trajectory of the round loop itself: the PR 2
//! engine decomposition (allocation-free stepper, cached-key scheduling
//! sort, incremental active queue) must keep ≥2× the seed engine's
//! rounds/sec at the high rate, and future engine work lands its speedup
//! here. The high-rate case is the interesting one — hundreds of jobs
//! are active at once, so per-round costs that scale with the active
//! queue dominate.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal_cluster::{ClusterTopology, LocalityModel, VariabilityProfile};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Las;
use pal_sim::{Scenario, StepOutcome};
use pal_trace::{ModelCatalog, SynergyConfig, Trace};

/// Deterministic non-flat 3-class profile sized to the cluster (profile
/// synthesis is not what this bench measures, so keep it cheap).
fn profile(gpus: usize) -> VariabilityProfile {
    VariabilityProfile::from_raw(
        (0..3)
            .map(|c| {
                (0..gpus)
                    .map(|g| 1.0 + ((g * 7 + c * 13) % 10) as f64 * 0.05)
                    .collect()
            })
            .collect(),
    )
}

fn synergy_trace(jobs_per_hour: f64) -> Trace {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    SynergyConfig {
        num_jobs: 300,
        jobs_per_hour,
        ..Default::default()
    }
    .generate(&catalog)
}

fn scenario(trace: &Trace, topo: ClusterTopology) -> Scenario {
    Scenario::new(trace.clone(), topo)
        .profile(profile(topo.total_gpus()))
        .locality(LocalityModel::uniform(1.5))
        .scheduler(Las::default())
}

fn bench_full_run(c: &mut Criterion) {
    let topo = ClusterTopology::new(64, 4);
    let mut group = c.benchmark_group("engine_full_run");
    group.sample_size(10);
    for (label, rate) in [("low_4jph", 4.0), ("high_14jph", 14.0)] {
        let trace = synergy_trace(rate);
        group.bench_with_input(BenchmarkId::new("synergy_300jobs", label), &rate, |b, _| {
            b.iter(|| {
                let r = scenario(&trace, topo).run().expect("bench run");
                black_box(r.rounds)
            })
        });
    }
    group.finish();
}

fn bench_single_steps(c: &mut Criterion) {
    // Per-round cost at saturation: warm a stepper into the congested
    // regime once, then measure individual `step()` calls (restarting
    // when the run completes). This is the allocation-free hot path.
    let topo = ClusterTopology::new(64, 4);
    let trace = synergy_trace(14.0);
    let mut group = c.benchmark_group("engine_step");
    let mut sim = scenario(&trace, topo).start().expect("bench scenario");
    for _ in 0..200 {
        sim.step().expect("warmup step");
    }
    group.bench_function("saturated_round", |b| {
        b.iter(|| {
            if sim.step().expect("bench step") == StepOutcome::Complete {
                sim = scenario(&trace, topo).start().expect("bench scenario");
                for _ in 0..200 {
                    sim.step().expect("warmup step");
                }
            }
            black_box(sim.rounds())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_full_run, bench_single_steps);

fn main() {
    benches();
    pal_bench::bench_json::update_workspace("engine_rounds", &criterion::take_measurements())
        .expect("update BENCH_engine.json");
}
