//! Criterion benchmark for campaign start-up cost: a scenarios×policies
//! grid over **one** distinct profile must pay for one PM-score table
//! build (K-Means + silhouette over every class), not one per cell.
//!
//! Two wall-time variants run the same 4×4 grid:
//!
//! - `shared_cache`: the PR-5 path — `Arc`-shared trace/profile handles
//!   and a [`pal::PmTableCache`] shared across the policy columns, so
//!   PM-First and PAL cells all borrow one table;
//! - `per_cell_build`: the historical behaviour — every table-consuming
//!   cell rebuilds its table from the profile (8 builds for the 4×4
//!   grid: 4 PM-First + 4 PAL cells).
//!
//! Beyond wall time, `main` records the *deterministic* build counts
//! (`builds/...`) into `BENCH_engine.json`; the CI bench gate pins them
//! bit-exactly, so a regression that quietly reintroduces per-cell table
//! construction fails the build even on a noisy runner.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use pal::{PalPlacement, PmFirstPlacement, PmTableCache};
use pal_cluster::{ClusterTopology, JobClass, LocalityModel, VariabilityProfile};
use pal_gpumodel::Workload;
use pal_sim::placement::{PackedPlacement, RandomPlacement};
use pal_sim::sched::{Fifo, Las, Srsf, Srtf};
use pal_sim::{Campaign, PolicySpec, Scenario};
use pal_trace::{JobId, JobSpec, Trace};
use std::sync::Arc;

/// Cluster for the grid: the paper's 64-GPU Sia configuration — large
/// enough that the K ∈ 2..=11 binning sweep has real work per class.
fn topology() -> ClusterTopology {
    ClusterTopology::sia_64()
}

/// Deterministic non-flat 3-class profile sized to the cluster; built
/// once and shared so profile synthesis stays outside the measurement.
fn profile(gpus: usize) -> VariabilityProfile {
    VariabilityProfile::from_raw(
        (0..3)
            .map(|c| {
                (0..gpus)
                    .map(|g| 1.0 + ((g * 11 + c * 17) % 13) as f64 * 0.04)
                    .collect()
            })
            .collect(),
    )
}

/// A small trace: the grid's cells should be dominated by start-up work
/// (table builds or their absence), not by simulated rounds.
fn small_trace(tag: u32) -> Trace {
    Trace::new(
        format!("startup-{tag}"),
        (0..10)
            .map(|i| JobSpec {
                id: JobId(i),
                model: Workload::ResNet50,
                class: JobClass(i as usize % 3),
                arrival: i as f64 * 120.0,
                gpu_demand: 1 + (i as usize % 4),
                iterations: 300 + 60 * i as u64,
                base_iter_time: 1.0,
            })
            .collect(),
    )
}

/// The 4-scenario axis: one scheduler per row, all rows sharing the same
/// `Arc` trace/profile handles.
fn grid_campaign(policies: Vec<PolicySpec>) -> Campaign {
    let profile = Arc::new(profile(topology().total_gpus()));
    let locality = Arc::new(LocalityModel::uniform(1.5));
    let mut campaign = Campaign::new().seed(0x5EED).policies(policies);
    for (tag, idx) in [("fifo", 0u32), ("las", 1), ("srtf", 2), ("srsf", 3)] {
        let trace = Arc::new(small_trace(idx));
        let profile = Arc::clone(&profile);
        let locality = Arc::clone(&locality);
        campaign = campaign.scenario(tag, move || {
            let s = Scenario::new(Arc::clone(&trace), topology())
                .profile(Arc::clone(&profile))
                .locality(Arc::clone(&locality));
            match idx {
                0 => s.scheduler(Fifo),
                1 => s.scheduler(Las::default()),
                2 => s.scheduler(Srtf),
                _ => s.scheduler(Srsf),
            }
        });
    }
    campaign
}

/// The 4-policy axis with a shared table cache: one build serves every
/// PM-First and PAL cell.
fn cached_policies(cache: &Arc<PmTableCache>) -> Vec<PolicySpec> {
    let pal_cache = Arc::clone(cache);
    let pmf_cache = Arc::clone(cache);
    vec![
        PolicySpec::new("Random", |_, seed| Box::new(RandomPlacement::new(seed))),
        PolicySpec::new("Tiresias", |_, seed| {
            Box::new(PackedPlacement::randomized(seed))
        })
        .sticky(true),
        PolicySpec::new("PM-First", move |profile, _| {
            Box::new(PmFirstPlacement::from_shared(
                pmf_cache.get_or_build_default(profile),
            ))
        }),
        PolicySpec::new("PAL", move |profile, _| {
            Box::new(PalPlacement::from_shared(
                pal_cache.get_or_build_default(profile),
            ))
        }),
    ]
}

/// The same 4-policy axis rebuilding tables per cell (the pre-cache
/// behaviour, kept as the bench's contrast arm).
fn uncached_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::new("Random", |_, seed| Box::new(RandomPlacement::new(seed))),
        PolicySpec::new("Tiresias", |_, seed| {
            Box::new(PackedPlacement::randomized(seed))
        })
        .sticky(true),
        PolicySpec::new("PM-First", |profile, _| {
            Box::new(PmFirstPlacement::new(profile))
        }),
        PolicySpec::new("PAL", |profile, _| Box::new(PalPlacement::new(profile))),
    ]
}

fn bench_campaign_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_grid");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("4x4", "shared_cache"), |b| {
        b.iter(|| {
            let cache = Arc::new(PmTableCache::new());
            let results = grid_campaign(cached_policies(&cache))
                .run()
                .expect("bench campaign");
            assert_eq!(cache.builds(), 1, "grid over one profile, one build");
            black_box(results.len())
        })
    });
    group.bench_function(BenchmarkId::new("4x4", "per_cell_build"), |b| {
        b.iter(|| {
            let results = grid_campaign(uncached_policies())
                .run()
                .expect("bench campaign");
            black_box(results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_grid);

fn main() {
    benches();
    let mut entries = criterion::take_measurements();
    // Deterministic build counts for the CI gate: one distinct profile ⇒
    // one table build; a second distinct profile (the truth-perturbation
    // shape) ⇒ exactly one more. Counter-verified through PmTableCache,
    // independent of machine speed.
    let cache = Arc::new(PmTableCache::new());
    grid_campaign(cached_policies(&cache))
        .run()
        .expect("build-accounting run");
    entries.push(("builds/4x4_one_profile".to_string(), cache.builds() as f64));
    let second = profile(topology().total_gpus()).perturbed(JobClass::A, &[], 1.0);
    // Same content ⇒ still one build; a genuinely different profile adds one.
    cache.get_or_build_default(&second);
    entries.push((
        "builds/after_identical_profile".to_string(),
        cache.builds() as f64,
    ));
    let perturbed =
        profile(topology().total_gpus()).perturbed(JobClass::A, &[pal_cluster::GpuId(0)], 4.0);
    cache.get_or_build_default(&perturbed);
    entries.push((
        "builds/after_distinct_profile".to_string(),
        cache.builds() as f64,
    ));
    pal_bench::bench_json::update_workspace("campaign_startup", &entries)
        .expect("update BENCH_engine.json");
}
