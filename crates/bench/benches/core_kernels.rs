//! Criterion benchmarks for the core algorithmic kernels underlying PAL:
//! K-Means binning, silhouette scoring, classifier fitting, L×V matrix
//! construction, and a full end-to-end Sia simulation round-trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pal::{AppClassifier, LvMatrix};
use pal_bench::{longhorn_profile, run_policy, PolicyKind, PROFILE_SEED};
use pal_cluster::{ClusterTopology, JobClass, LocalityModel};
use pal_gpumodel::{GpuSpec, Workload};
use pal_kmeans::{KMeans, ScoreBinning};
use pal_sim::sched::Fifo;
use pal_trace::{ModelCatalog, SiaPhillyConfig};
use std::hint::black_box;

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_1d");
    for n in [128usize, 512] {
        let profile = longhorn_profile(n.min(448), PROFILE_SEED);
        let points: Vec<Vec<f64>> = profile
            .class_scores(JobClass::A)
            .iter()
            .map(|&v| vec![v])
            .collect();
        group.bench_with_input(BenchmarkId::new("k4", n), &n, |b, _| {
            b.iter(|| black_box(KMeans::new(4, 7).fit(&points)))
        });
    }
    group.finish();
}

fn bench_binning(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_binning_k_sweep");
    for n in [64usize, 256] {
        let profile = longhorn_profile(n, PROFILE_SEED);
        let scores = profile.class_scores(JobClass::A).to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ScoreBinning::default().bin(&scores)))
        });
    }
    group.finish();
}

fn bench_classifier_fit(c: &mut Criterion) {
    let workloads: Vec<Workload> = Workload::ALL.to_vec();
    let spec = GpuSpec::v100();
    c.bench_function("classifier_fit_11_apps", |b| {
        b.iter(|| black_box(AppClassifier::fit_workloads(&workloads, &spec, 3, 1)))
    });
}

fn bench_lv_matrix(c: &mut Criterion) {
    let levels: Vec<f64> = (0..12).map(|i| 0.85 + i as f64 * 0.15).collect();
    c.bench_function("lv_matrix_build_12_levels", |b| {
        b.iter(|| black_box(LvMatrix::new(&levels, 1.0, 1.7)))
    });
}

fn bench_full_simulation(c: &mut Criterion) {
    let topo = ClusterTopology::sia_64();
    let profile = longhorn_profile(64, PROFILE_SEED);
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let trace = SiaPhillyConfig::default().generate(1, &catalog);
    let mut group = c.benchmark_group("sia_trace_end_to_end");
    group.sample_size(20);
    for kind in [PolicyKind::Tiresias, PolicyKind::PmFirst, PolicyKind::Pal] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(run_policy(&trace, topo, &profile, &locality, Fifo, kind)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kmeans,
    bench_binning,
    bench_classifier_fit,
    bench_lv_matrix,
    bench_full_simulation
);
criterion_main!(benches);
