//! Figure 18: PAL placement-policy compute time per scheduling epoch for
//! 64-, 128-, and 256-GPU clusters (boxplot statistics over all epochs of
//! a Synergy run).
//!
//! The paper's bound to beat: worst case well under the 300-second epoch
//! (they report ≤4 s in Python/Blox; a Rust implementation is far faster,
//! but the shape — growing with cluster size, tiny versus the epoch — is
//! the claim).
//!
//! The engine times *only* the policy's `placement_order` and `place`
//! calls — allocation-validity checks and engine bookkeeping sit outside
//! the measured window — so these numbers are the policy's own compute
//! cost, directly comparable to the paper's.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Fifo;
use pal_stats::BoxplotStats;
use pal_trace::{ModelCatalog, SynergyConfig};

fn main() {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let locality = LocalityModel::uniform(1.7);

    println!("# Figure 18: PAL allocation compute time (microseconds) per epoch vs cluster size");
    println!("cluster_size,epochs,q1_us,median_us,q3_us,whisker_hi_us,max_us,total_share_of_epoch");
    for (nodes, load) in [(16usize, 6.0), (32, 12.0), (64, 24.0)] {
        let topo = ClusterTopology::new(nodes, 4);
        let n = topo.total_gpus();
        let profile = longhorn_profile(n, PROFILE_SEED);
        // Scale offered load with cluster size so contention is comparable.
        let trace = SynergyConfig::default().at_load(load).generate(&catalog);
        let r = run_policy(&trace, topo, &profile, &locality, Fifo, PolicyKind::Pal);
        let us: Vec<f64> = r.placement_compute_times.iter().map(|&s| s * 1e6).collect();
        let b = BoxplotStats::of(&us).expect("at least one epoch");
        let max = us.iter().cloned().fold(0.0, f64::max);
        println!(
            "{n},{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.2e}",
            us.len(),
            b.q1,
            b.median,
            b.q3,
            b.whisker_hi,
            max,
            max / 1e6 / 300.0
        );
    }
    println!();
    println!(
        "# (also see `cargo bench -p pal-bench --bench placement_overhead` for Criterion timings)"
    );
}
