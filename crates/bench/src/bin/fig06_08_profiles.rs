//! Figures 6, 7, and 8: normalized performance variability profiles of the
//! Frontera cluster, the Longhorn cluster, and the 64-GPU Frontera testbed,
//! grouped by cabinet (the figures' boxplot panels).
//!
//! For each (cluster, model) pair, prints per-cabinet boxplot statistics of
//! iteration time normalized to the cluster median, plus the aggregate
//! geomean variability and max slowdown the paper quotes in the text.

use pal_bench::{profile_table3, PROFILE_SEED};
use pal_gpumodel::{ClusterFlavor, GpuSpec};
use pal_stats::BoxplotStats;

fn main() {
    let systems = [
        (
            "Figure 6: Frontera",
            GpuSpec::quadro_rtx5000(),
            ClusterFlavor::Frontera,
            360,
        ),
        (
            "Figure 7: Longhorn",
            GpuSpec::v100(),
            ClusterFlavor::Longhorn,
            416,
        ),
        (
            "Figure 8: Frontera 64-GPU testbed",
            GpuSpec::quadro_rtx5000(),
            ClusterFlavor::FronteraTestbed,
            64,
        ),
    ];
    for (title, spec, flavor, n) in systems {
        println!("# {title} ({n} GPUs)");
        let profiled = profile_table3(&spec, flavor, n, PROFILE_SEED);
        for p in &profiled {
            println!(
                "# {}: geomean variability = {:.1}%, max slowdown = {:.2}x",
                p.app,
                p.geomean_variability() * 100.0,
                p.max_slowdown()
            );
            println!("model,cabinet,q1,median,q3,whisker_lo,whisker_hi,outliers");
            for cab in 0..flavor.cabinet_count() {
                let vals: Vec<f64> = p
                    .normalized
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| flavor.cabinet_of(i) == cab)
                    .map(|(_, &v)| v)
                    .collect();
                if let Some(b) = BoxplotStats::of(&vals) {
                    println!(
                        "{},c{:03},{:.3},{:.3},{:.3},{:.3},{:.3},{}",
                        p.app,
                        cab + 196,
                        b.q1,
                        b.median,
                        b.q3,
                        b.whisker_lo,
                        b.whisker_hi,
                        b.outliers.len()
                    );
                }
            }
        }
        println!();
    }
}
