//! Figure 20: average JCT for the Synergy trace at 10 jobs/hour as the
//! inter-node locality penalty varies from 1.0 to 1.7 (FIFO, 256 GPUs).

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Fifo;
use pal_trace::{ModelCatalog, SynergyConfig};

fn main() {
    let topo = ClusterTopology::synergy_256();
    let profile = longhorn_profile(256, PROFILE_SEED);
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let trace = SynergyConfig::default().at_load(10.0).generate(&catalog);

    println!("# Figure 20: Synergy avg JCT (hours) vs locality penalty, 10 jobs/hour, FIFO");
    println!("locality_penalty,policy,avg_jct_h,pal_improvement_over_tiresias_pct");
    for penalty in [1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7] {
        let locality = LocalityModel::uniform(penalty);
        let results = run_all_policies(&trace, topo, &profile, &locality, Fifo);
        let tiresias = results
            .iter()
            .find(|(k, _)| *k == PolicyKind::Tiresias)
            .expect("Tiresias ran")
            .1
            .avg_jct();
        for (kind, r) in &results {
            let imp = if *kind == PolicyKind::Pal {
                format!("{:.0}%", (1.0 - r.avg_jct() / tiresias) * 100.0)
            } else {
                String::new()
            };
            println!(
                "C{penalty:.1},{},{:.2},{imp}",
                kind.name(),
                hours(r.avg_jct())
            );
        }
    }
}
