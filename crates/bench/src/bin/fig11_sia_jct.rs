//! Figure 11 and the Section V-B headline numbers: average JCT normalized
//! to Tiresias for the eight Sia-Philly workloads on a 64-GPU cluster with
//! FIFO scheduling, across all six placement policies.
//!
//! One 8-scenario × 6-policy [`pal_sim::Campaign`]: every workload is a
//! scenario row, every placement configuration a policy column, all 48
//! cells run in parallel with deterministic per-cell seeds.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::Scenario;
use pal_trace::{ModelCatalog, SiaPhillyConfig};
use std::collections::HashMap;

fn main() {
    let topo = ClusterTopology::sia_64();
    let profile = longhorn_profile(64, PROFILE_SEED);
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::v100());

    let mut campaign = paper_campaign();
    for w in 1..=8u32 {
        let trace = SiaPhillyConfig::default().generate(w, &catalog);
        let profile = profile.clone();
        let locality = locality.clone();
        campaign = campaign.scenario(format!("{w}"), move || {
            Scenario::new(trace.clone(), topo)
                .profile(profile.clone())
                .locality(locality.clone())
        });
    }
    let cells = campaign.run().expect("figure 11 campaign misconfigured");

    println!("# Figure 11: avg JCT normalized to Tiresias (Packed-Sticky = 1.0)");
    println!("workload,policy,avg_jct_h,normalized_to_tiresias");
    let mut metrics: HashMap<String, Vec<(f64, f64, f64, f64)>> = HashMap::new();
    for w in 1..=8u32 {
        let workload: Vec<_> = cells
            .iter()
            .filter(|c| c.scenario == format!("{w}"))
            .collect();
        let tiresias = workload
            .iter()
            .find(|c| c.policy == PolicyKind::Tiresias.name())
            .expect("Tiresias ran")
            .result
            .avg_jct();
        for cell in &workload {
            let r = &cell.result;
            println!(
                "{w},{},{:.2},{:.3}",
                cell.policy,
                hours(r.avg_jct()),
                r.avg_jct() / tiresias
            );
            metrics.entry(cell.policy.clone()).or_default().push((
                r.avg_jct(),
                r.p99_jct(),
                r.makespan(),
                r.utilization(),
            ));
        }
    }

    println!();
    println!("# Section V-B summary: geomean improvement over Tiresias across the 8 workloads");
    println!("policy,geomean_avg_jct,geomean_p99_jct,geomean_makespan,geomean_utilization");
    let tiresias = metrics["Tiresias"].clone();
    for kind in PolicyKind::ALL {
        let rows = &metrics[kind.name()];
        let ratio = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            let num: Vec<f64> = rows.iter().map(f).collect();
            let den: Vec<f64> = tiresias.iter().map(f).collect();
            pal_stats::geomean_of_ratios(&num, &den).expect("positive metrics")
        };
        println!(
            "{},{:.3},{:.3},{:.3},{:.3}",
            kind.name(),
            ratio(|r| r.0),
            ratio(|r| r.1),
            ratio(|r| r.2),
            ratio(|r| r.3)
        );
    }
    println!();
    println!("# (ratios < 1.0 mean better JCT/makespan; utilization ratios > 1.0 mean better)");
}
