//! Tables II and III: the model zoo used in the real-cluster evaluation
//! and the profiling representatives used for PM-penalty estimation.

use pal_bench::{profile_table3, PROFILE_SEED};
use pal_gpumodel::{ClusterFlavor, GpuSpec, Workload};
use pal_trace::ModelCatalog;

fn main() {
    println!("# Table II: models used in real cluster evaluation");
    println!("task,model,dataset,batch_size,class,base_iter_time_ms");
    let catalog = ModelCatalog::table2(&GpuSpec::quadro_rtx5000());
    for e in catalog.entries() {
        let spec = e.model.spec();
        println!(
            "{},{},{},{},{},{:.2}",
            spec.task,
            spec.name,
            spec.dataset,
            spec.batch_size,
            e.class.label(),
            e.base_iter_time * 1e3
        );
    }

    println!();
    println!("# Table III: applications profiled for PM penalty estimation");
    println!("benchmark,cluster,geomean_variability_pct,max_slowdown");
    for (cluster, spec, flavor, n) in [
        (
            "Longhorn",
            GpuSpec::v100(),
            ClusterFlavor::Longhorn,
            416usize,
        ),
        (
            "Frontera",
            GpuSpec::quadro_rtx5000(),
            ClusterFlavor::Frontera,
            360,
        ),
    ] {
        let profiled = profile_table3(&spec, flavor, n, PROFILE_SEED);
        for (w, p) in Workload::TABLE_III.iter().zip(&profiled) {
            println!(
                "{},{cluster},{:.1},{:.2}",
                w.name(),
                p.geomean_variability() * 100.0,
                p.max_slowdown()
            );
        }
    }
}
