//! Figures 9 & 10 and Table IV: the physical 64-GPU Frontera testbed
//! experiment (Section V-A).
//!
//! The paper runs the same Sia trace on the physical cluster and in
//! simulation, finding an 11–14 % cluster-to-sim JCT gap caused by stale
//! PM scores on node 0 (its class-A profile was ~8× too optimistic). We
//! reproduce both sides:
//!
//! - "simulation": ground-truth execution uses the same profile the policy
//!   sees;
//! - "cluster": ground truth perturbs node 0's class-A scores by 8× while
//!   the policy still sees the stale profile.
//!
//! Prints the four JCT CDFs (Figure 9), boxplot stats (Figure 10), and the
//! Table IV summary.

use pal_bench::{
    frontera_testbed_profile, hours, run_policy, PolicyKind, CAMPAIGN_SEED, PROFILE_SEED,
};
use pal_cluster::{ClusterTopology, JobClass, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Las;
use pal_sim::{Scenario, SimResult};
use pal_stats::BoxplotStats;
use pal_trace::{ModelCatalog, SiaPhillyConfig};

fn main() {
    let topo = ClusterTopology::sia_64();
    let profile = frontera_testbed_profile(PROFILE_SEED);
    // Stale-profile effect (Section V-A's c196-071 finding): node 0's
    // class-A PM scores are stale, so jobs placed there run worse than the
    // profile predicts. The paper measured an 11-14% cluster-to-sim JCT
    // gap from this; a 2x ground-truth penalty on the node reproduces a
    // gap of that size (the raw 8x of the paper's text applied to a
    // variability-seeking policy would dominate the whole trace — their
    // gap includes only "a few large jobs" hitting the node).
    // Perturb the node whose profiled class-A scores sit nearest the
    // cluster median: exposure to it is then roughly policy-independent
    // (as on the real cluster, where both policies' jobs hit the stale
    // node), rather than PAL-seeking.
    let stale_node = (0..topo.nodes)
        .min_by(|&a, &b| {
            let mean = |n: usize| {
                topo.gpus_of(pal_cluster::NodeId(n as u32))
                    .iter()
                    .map(|&g| profile.score(JobClass::A, g))
                    .sum::<f64>()
                    / topo.gpus_per_node as f64
            };
            (mean(a) - 1.0)
                .abs()
                .partial_cmp(&(mean(b) - 1.0).abs())
                .expect("finite scores")
        })
        .expect("non-empty cluster");
    let truth = profile.perturbed(
        JobClass::A,
        &topo.gpus_of(pal_cluster::NodeId(stale_node as u32)),
        2.0,
    );
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::quadro_rtx5000());
    let trace = SiaPhillyConfig::default().generate(1, &catalog);
    // The testbed runs use Tiresias (LAS) scheduling (Section IV-A2).
    let sched = Las::default();

    let mut results: Vec<(String, SimResult)> = Vec::new();
    for kind in [PolicyKind::Tiresias, PolicyKind::Pal] {
        // Simulation arm.
        let sim = run_policy(&trace, topo, &profile, &locality, sched, kind);
        // "Physical cluster" arm: same policy view, perturbed ground truth.
        let cluster = Scenario::new(trace.clone(), topo)
            .profile(profile.clone())
            .truth(truth.clone())
            .locality(locality.clone())
            .scheduler(sched)
            .placement_boxed(kind.build(&profile, CAMPAIGN_SEED))
            .sticky(kind.sticky())
            .run()
            .expect("testbed scenario misconfigured");
        results.push((format!("{} Simulation", kind.name()), sim));
        results.push((kind.name().to_string(), cluster));
    }

    println!("# Figure 9: cumulative JCT distributions (seconds)");
    println!("arm,fraction_of_jobs,jct_seconds");
    for (name, r) in &results {
        for (q, v) in r.jct_cdf().staircase(33) {
            println!("{name},{q:.4},{v:.1}");
        }
    }

    println!();
    println!("# Figure 10: JCT boxplots (seconds)");
    println!("arm,q1,median,q3,whisker_lo,whisker_hi,outliers");
    for (name, r) in &results {
        let b = BoxplotStats::of(&r.jcts()).expect("non-empty");
        println!(
            "{name},{:.0},{:.0},{:.0},{:.0},{:.0},{}",
            b.q1,
            b.median,
            b.q3,
            b.whisker_lo,
            b.whisker_hi,
            b.outliers.len()
        );
    }

    println!();
    println!("# Table IV: physical cluster & simulation results");
    println!("placement,avg_jct_cluster_h,avg_jct_sim_h,cluster_to_sim_diff_pct");
    let get = |name: &str| {
        &results
            .iter()
            .find(|(n, _)| n == name)
            .expect("known arm")
            .1
    };
    let row = |label: &str| {
        let cluster = get(label).avg_jct();
        let sim = get(&format!("{label} Simulation")).avg_jct();
        println!(
            "{label},{:.2},{:.2},{:.0}%",
            hours(cluster),
            hours(sim),
            (cluster - sim) / sim * 100.0
        );
        (cluster, sim)
    };
    let (t_cluster, t_sim) = row("Tiresias");
    let (p_cluster, p_sim) = row("PAL");
    println!(
        "% improvement,{:.0}%,{:.0}%,",
        (1.0 - p_cluster / t_cluster) * 100.0,
        (1.0 - p_sim / t_sim) * 100.0
    );
    println!();
    println!(
        "# makespan: PAL vs Tiresias (cluster arm): {:.0}% improvement",
        (1.0 - get("PAL").makespan() / get("Tiresias").makespan()) * 100.0
    );
    println!(
        "# KS distance cluster-vs-sim: Tiresias {:.3}, PAL {:.3}",
        get("Tiresias")
            .jct_cdf()
            .ks_distance(&get("Tiresias Simulation").jct_cdf()),
        get("PAL")
            .jct_cdf()
            .ks_distance(&get("PAL Simulation").jct_cdf())
    );
}
