//! Ablation: sensitivity of PAL to the PM-score bin count K
//! (Section III-B argues small K loses fidelity and large K
//! over-discriminates; the paper selects K by silhouette score).
//!
//! Sweeps fixed K values against the silhouette-selected default on the
//! Sia workloads.

use pal::PalPlacement;
use pal_bench::{hours, longhorn_profile, PROFILE_SEED};
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_kmeans::ScoreBinning;
use pal_sim::Scenario;
use pal_trace::{ModelCatalog, SiaPhillyConfig};

fn main() {
    let topo = ClusterTopology::sia_64();
    let profile = longhorn_profile(64, PROFILE_SEED);
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let traces: Vec<_> = (1..=4u32)
        .map(|w| SiaPhillyConfig::default().generate(w, &catalog))
        .collect();

    println!("# Ablation: PAL avg JCT (hours, mean over 4 Sia workloads) vs PM-score bin count");
    println!("binning,avg_jct_h");
    let run_with = |label: String, binning: ScoreBinning| {
        let jcts: Vec<f64> = traces
            .iter()
            .map(|trace| {
                Scenario::new(trace.clone(), topo)
                    .profile(profile.clone())
                    .locality(locality.clone())
                    .placement(PalPlacement::with_binning(&profile, &binning))
                    .run()
                    .expect("ablation scenario misconfigured")
                    .avg_jct()
            })
            .collect();
        println!(
            "{label},{:.2}",
            hours(pal_stats::mean(&jcts).expect("non-empty"))
        );
    };

    for k in [2usize, 3, 5, 8, 11] {
        run_with(
            format!("fixed-K{k}"),
            ScoreBinning {
                k_min: k,
                k_max: k,
                ..Default::default()
            },
        );
    }
    run_with("silhouette-selected".to_string(), ScoreBinning::default());
}
