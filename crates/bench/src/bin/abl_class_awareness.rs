//! Ablation: how much of PAL's benefit comes from *application-specific*
//! variability awareness (the classification layer of Section III-A)?
//!
//! Arms, all running PAL's allocation machinery, with ground-truth
//! execution always using each job's true class (only the *policy's view*
//! is degraded):
//!
//! - **class-aware**: jobs carry their true class (the paper's design);
//! - **all-class-A**: the policy treats every job as maximally
//!   variability-sensitive (no classifier; one conservative profile row);
//! - **all-class-C**: the policy treats every job as insensitive —
//!   variability is effectively invisible and PAL degenerates to
//!   locality-first placement.

use pal::PalPlacement;
use pal_bench::{hours, longhorn_profile, PROFILE_SEED};
use pal_cluster::{ClusterState, ClusterTopology, JobClass, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::{Allocation, PlacementCtx, PlacementPolicy, PlacementRequest, Scenario};
use pal_trace::{ModelCatalog, SiaPhillyConfig};

/// Wraps a placement policy, overriding the class it perceives for every
/// request. Execution (ground truth) is untouched — only the policy's
/// decisions are degraded.
struct ForcedClassView<P> {
    inner: P,
    class: Option<JobClass>,
}

impl<P: PlacementPolicy> ForcedClassView<P> {
    fn rewrite(&self, requests: &[PlacementRequest]) -> Vec<PlacementRequest> {
        requests
            .iter()
            .map(|r| PlacementRequest {
                class: self.class.unwrap_or(r.class),
                ..r.clone()
            })
            .collect()
    }
}

impl<P: PlacementPolicy> PlacementPolicy for ForcedClassView<P> {
    fn name(&self) -> &str {
        "PAL-forced-class"
    }

    fn observe(&mut self, obs: &pal_sim::RoundObservation) {
        self.inner.observe(obs);
    }

    fn placement_order_into(
        &self,
        requests: &[PlacementRequest],
        ctx: &PlacementCtx,
        out: &mut Vec<usize>,
    ) {
        self.inner
            .placement_order_into(&self.rewrite(requests), ctx, out);
    }

    fn place_into(
        &mut self,
        request: &PlacementRequest,
        ctx: &PlacementCtx,
        state: &ClusterState,
        out: &mut Allocation,
    ) {
        let forced = PlacementRequest {
            class: self.class.unwrap_or(request.class),
            ..request.clone()
        };
        self.inner.place_into(&forced, ctx, state, out);
    }
}

fn main() {
    let topo = ClusterTopology::sia_64();
    let profile = longhorn_profile(64, PROFILE_SEED);
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let traces: Vec<_> = (1..=4u32)
        .map(|w| SiaPhillyConfig::default().generate(w, &catalog))
        .collect();

    println!("# Ablation: value of the classification layer (mean over 4 Sia workloads)");
    println!("arm,avg_jct_h");
    for (label, forced) in [
        ("class-aware", None),
        ("all-class-A", Some(JobClass::A)),
        ("all-class-C", Some(JobClass::C)),
    ] {
        let jcts: Vec<f64> = traces
            .iter()
            .map(|t| {
                Scenario::new(t.clone(), topo)
                    .profile(profile.clone())
                    .locality(locality.clone())
                    .placement(ForcedClassView {
                        inner: PalPlacement::new(&profile),
                        class: forced,
                    })
                    .run()
                    .expect("ablation scenario misconfigured")
                    .avg_jct()
            })
            .collect();
        println!(
            "{label},{:.2}",
            hours(pal_stats::mean(&jcts).expect("non-empty"))
        );
    }
    println!();
    println!("# Expected: class-aware best; all-class-C (variability-blind) worst");
}
