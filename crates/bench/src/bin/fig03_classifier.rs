//! Figure 3: classification of applications via 2-D clustering over the
//! `DRAMUtil × PeakFUUtil` space.
//!
//! Prints each zoo application's utilization features and assigned class,
//! plus the class centroids, as CSV.

use pal::AppClassifier;
use pal_gpumodel::{utilization_features, GpuSpec, Workload};

fn main() {
    let spec = GpuSpec::v100();
    let workloads: Vec<Workload> = Workload::ALL.to_vec();
    let classifier = AppClassifier::fit_workloads(&workloads, &spec, 3, 0xC1A55);

    println!("# Figure 3: application classification (K = 3)");
    println!("app,dram_util,peak_fu_util,class,paper_class");
    for (i, w) in workloads.iter().enumerate() {
        let (dram, fu) = utilization_features(&w.spec(), &spec);
        let class = classifier.class_of_sample(i);
        let expected = pal_cluster::JobClass(w.spec().expected_class);
        println!(
            "{},{:.3},{:.3},{},{}",
            w.name(),
            dram,
            fu,
            class.label(),
            expected.label()
        );
    }
    println!();
    println!("# class centroids");
    println!("class,dram_util,peak_fu_util");
    for (i, (d, f)) in classifier.centroids().iter().enumerate() {
        println!("{},{:.3},{:.3}", pal_cluster::JobClass(i).label(), d, f);
    }
}
