//! Figure 16: average JCT for Synergy traces with the LAS (Tiresias)
//! scheduler as job load varies from 8 to 14 jobs/hour.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Las;
use pal_trace::{ModelCatalog, SynergyConfig};

fn main() {
    let topo = ClusterTopology::synergy_256();
    let profile = longhorn_profile(256, PROFILE_SEED);
    let locality = LocalityModel::uniform(1.7);
    let catalog = ModelCatalog::table2(&GpuSpec::v100());

    println!("# Figure 16: Synergy avg JCT (hours) vs job load, LAS scheduler");
    println!("jobs_per_hour,policy,avg_jct_h,pal_improvement_over_tiresias_pct");
    for load in [8.0, 10.0, 12.0, 14.0] {
        let trace = SynergyConfig::default().at_load(load).generate(&catalog);
        let results = run_all_policies(&trace, topo, &profile, &locality, Las::default());
        let tiresias = results
            .iter()
            .find(|(k, _)| *k == PolicyKind::Tiresias)
            .expect("Tiresias ran")
            .1
            .avg_jct();
        for (kind, r) in &results {
            let imp = if *kind == PolicyKind::Pal {
                format!("{:.0}%", (1.0 - r.avg_jct() / tiresias) * 100.0)
            } else {
                String::new()
            };
            println!("{load},{},{:.2},{imp}", kind.name(), hours(r.avg_jct()));
        }
    }
}
