//! Figure 19: Tiresias' and PAL's wait times under (a) LAS, (b) SRTF, and
//! (c) FIFO schedulers, for the Synergy trace at 8 jobs/hour.
//!
//! LAS gives fresh jobs priority, so waits decay over the trace; FIFO's
//! waits grow monotonically; SRTF sits between.
//!
//! A 3-scheduler × 2-policy [`Campaign`]: each scheduler is one scenario
//! row, each placement configuration one policy column.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::{Fifo, Las, Srtf};
use pal_sim::{Campaign, Scenario};
use pal_trace::{ModelCatalog, SynergyConfig};

fn main() {
    let topo = ClusterTopology::synergy_256();
    let profile = longhorn_profile(256, PROFILE_SEED);
    let locality = LocalityModel::uniform(1.7);
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let trace = SynergyConfig::default().at_load(8.0).generate(&catalog);

    let base = move |trace: &pal_trace::Trace, profile: &pal_cluster::VariabilityProfile| {
        Scenario::new(trace.clone(), topo)
            .profile(profile.clone())
            .locality(locality.clone())
    };
    let results = Campaign::new()
        .seed(CAMPAIGN_SEED)
        .scenario("LAS", {
            let (t, p, b) = (trace.clone(), profile.clone(), base.clone());
            move || b(&t, &p).scheduler(Las::default())
        })
        .scenario("SRTF", {
            let (t, p, b) = (trace.clone(), profile.clone(), base.clone());
            move || b(&t, &p).scheduler(Srtf)
        })
        .scenario("FIFO", {
            let (t, p, b) = (trace.clone(), profile.clone(), base.clone());
            move || b(&t, &p).scheduler(Fifo)
        })
        .policy(PolicyKind::Tiresias.spec())
        .policy(PolicyKind::Pal.spec())
        .run()
        .expect("figure 19 campaign misconfigured");

    println!("# Figure 19: wait time (hours) vs job ID per scheduler");
    println!("scheduler,policy,job_id,wait_time_h");
    for cell in &results {
        for (id, wait) in cell.result.wait_times() {
            println!("{},{},{id},{:.3}", cell.scenario, cell.policy, hours(wait));
        }
    }
}
