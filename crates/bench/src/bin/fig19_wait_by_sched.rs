//! Figure 19: Tiresias' and PAL's wait times under (a) LAS, (b) SRTF, and
//! (c) FIFO schedulers, for the Synergy trace at 8 jobs/hour.
//!
//! LAS gives fresh jobs priority, so waits decay over the trace; FIFO's
//! waits grow monotonically; SRTF sits between.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::{Fifo, Las, SchedulingPolicy, Srtf};
use pal_trace::{ModelCatalog, SynergyConfig};

fn main() {
    let topo = ClusterTopology::synergy_256();
    let profile = longhorn_profile(256, PROFILE_SEED);
    let locality = LocalityModel::uniform(1.7);
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let trace = SynergyConfig::default().at_load(8.0).generate(&catalog);

    let las = Las::default();
    let schedulers: [(&str, &(dyn SchedulingPolicy + Sync)); 3] =
        [("LAS", &las), ("SRTF", &Srtf), ("FIFO", &Fifo)];

    println!("# Figure 19: wait time (hours) vs job ID per scheduler");
    println!("scheduler,policy,job_id,wait_time_h");
    for (name, sched) in schedulers {
        for kind in [PolicyKind::Tiresias, PolicyKind::Pal] {
            let r = run_policy(&trace, topo, &profile, &locality, sched, kind);
            for (id, wait) in r.wait_times() {
                println!("{name},{},{id},{:.3}", kind.name(), hours(wait));
            }
        }
    }
}
