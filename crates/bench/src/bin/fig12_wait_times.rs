//! Figure 12: job ID vs waiting time for Sia-Philly workloads 3 and 5
//! under Tiresias, PM-First, and PAL placement (FIFO scheduling).
//!
//! Workload 5's early large jobs blow up wait times for everything behind
//! them; workload 3's large jobs arrive late, so waits stay low — which is
//! why the policies' benefits differ between the two.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Fifo;
use pal_trace::{ModelCatalog, SiaPhillyConfig};

fn main() {
    let topo = ClusterTopology::sia_64();
    let profile = longhorn_profile(64, PROFILE_SEED);
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::v100());

    println!("# Figure 12: wait time (hours) vs job ID");
    println!("workload,policy,job_id,wait_time_h");
    for w in [3u32, 5] {
        let trace = SiaPhillyConfig::default().generate(w, &catalog);
        for kind in [PolicyKind::Tiresias, PolicyKind::PmFirst, PolicyKind::Pal] {
            let r = run_policy(&trace, topo, &profile, &locality, Fifo, kind);
            for (id, wait) in r.wait_times() {
                println!("{w},{},{id},{:.3}", kind.name(), hours(wait));
            }
        }
    }
}
