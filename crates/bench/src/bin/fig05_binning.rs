//! Figure 5: K-Means binning of a class-A variability profile on a 128-GPU
//! cluster.
//!
//! Prints each GPU's normalized performance, its bin (PM-score level), and
//! the bin centroids (the blue crosses of the figure).

use pal::PmScoreTable;
use pal_bench::{longhorn_profile, PROFILE_SEED};
use pal_cluster::{GpuId, JobClass};

fn main() {
    let profile = longhorn_profile(128, PROFILE_SEED);
    let table = PmScoreTable::build_default(&profile);
    let class = JobClass::A;

    println!("# Figure 5: PM-score binning, 128-GPU cluster, class A profile");
    println!(
        "# chosen K = {} inlier bins, {} total score levels, worst-bin silhouette = {:.3}",
        table.bins_of(class),
        table.levels(class).len(),
        table.binned(class).silhouette
    );
    println!("gpu,normalized_perf,pm_score,level_index,is_outlier");
    let binned = table.binned(class);
    for g in 0..profile.num_gpus() {
        let gpu = GpuId(g as u32);
        println!(
            "{},{:.4},{:.4},{},{}",
            g,
            profile.score(class, gpu),
            table.score(class, gpu),
            binned.level_of[g],
            binned.outlier_indices.contains(&g)
        );
    }
    println!();
    println!("# bin centroids (PM-score levels)");
    println!("level_index,pm_score");
    for (i, l) in table.levels(class).iter().enumerate() {
        println!("{i},{l:.4}");
    }
}
