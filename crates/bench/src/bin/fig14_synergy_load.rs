//! Figure 14: average JCT for Synergy traces with FIFO scheduling as the
//! job load varies from 4 to 20 jobs/hour on a 256-GPU cluster with a
//! constant locality penalty of 1.7 and Longhorn variability profiles.
//!
//! Also prints the multi-GPU-subset JCTs the paper quotes ("PAL improves
//! the average JCT of multi-GPU jobs by 5% to 31% over Tiresias").

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Fifo;
use pal_trace::{ModelCatalog, SynergyConfig};

/// Steady-state measurement window over job ids (the paper measures job
/// ids 2000–3000 of its longer traces; ours are 600 jobs).
const WINDOW: (usize, usize) = (150, 450);

fn main() {
    let topo = ClusterTopology::synergy_256();
    let profile = longhorn_profile(256, PROFILE_SEED);
    let locality = LocalityModel::uniform(1.7);
    let catalog = ModelCatalog::table2(&GpuSpec::v100());

    println!("# Figure 14: Synergy avg JCT (hours) vs job load, FIFO");
    println!("jobs_per_hour,policy,avg_jct_h,steady_state_jct_h,multi_gpu_jct_h");
    for load in [4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0] {
        let trace = SynergyConfig::default().at_load(load).generate(&catalog);
        let results = run_all_policies(&trace, topo, &profile, &locality, Fifo);
        for (kind, r) in &results {
            println!(
                "{load},{},{:.2},{:.2},{:.2}",
                kind.name(),
                hours(r.avg_jct()),
                hours(
                    r.avg_jct_window(WINDOW.0, WINDOW.1)
                        .expect("window non-empty")
                ),
                hours(r.avg_jct_multi_gpu().expect("trace has multi-GPU jobs"))
            );
        }
    }
}
