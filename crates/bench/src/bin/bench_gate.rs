//! `bench_gate`: the CI perf-regression gate.
//!
//! Compares a freshly measured `BENCH_engine.json` against a baseline and
//! exits non-zero when any `engine_rounds` metric regresses past
//! tolerance or any `allocs_per_place` count is non-zero (see
//! [`pal_bench::gate`] for the exact rules).
//!
//! ```text
//! bench_gate [--baseline PATH] [--current PATH] [--tolerance X]
//! ```
//!
//! `--current` defaults to the workspace `BENCH_engine.json` (the file
//! the benches just refreshed). `--baseline` defaults to the committed
//! copy, read via `git show HEAD:BENCH_engine.json` — pass a path
//! instead when the working tree predates the bench run (CI snapshots
//! the checkout's copy before benching) or to gate against an arbitrary
//! reference.

use pal_bench::{bench_json, gate};
use std::path::PathBuf;
use std::process::{Command, ExitCode};

struct Args {
    baseline: Option<PathBuf>,
    current: PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: None,
        current: bench_json::workspace_path(),
        tolerance: gate::DEFAULT_TOLERANCE,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--current" => args.current = PathBuf::from(value("--current")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if !(args.tolerance.is_finite() && args.tolerance >= 1.0) {
        return Err(format!(
            "--tolerance must be >= 1.0, got {}",
            args.tolerance
        ));
    }
    Ok(args)
}

/// The committed baseline: `git show HEAD:BENCH_engine.json`.
fn committed_baseline() -> Result<bench_json::BenchSections, String> {
    let out = Command::new("git")
        .args(["show", "HEAD:BENCH_engine.json"])
        .output()
        .map_err(|e| format!("running git: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git show HEAD:BENCH_engine.json failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    bench_json::parse_text(&text)
        .ok_or_else(|| "committed BENCH_engine.json is not in the canonical shape".to_string())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = match &args.baseline {
        Some(path) => bench_json::load(path).map_err(|e| format!("baseline: {e}"))?,
        None => committed_baseline()?,
    };
    let current = bench_json::load(&args.current).map_err(|e| format!("current: {e}"))?;
    let report = gate::check(&baseline, &current, args.tolerance);
    for line in &report.lines {
        println!("bench-gate: {line}");
    }
    for failure in &report.failures {
        eprintln!("bench-gate: FAIL {failure}");
    }
    if report.passed() {
        println!(
            "bench-gate: OK — {} metric(s) within {}x tolerance",
            report.lines.len(),
            args.tolerance
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench-gate: error: {msg}");
            ExitCode::FAILURE
        }
    }
}
