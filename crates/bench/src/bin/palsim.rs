//! `palsim` — command-line driver for one-off simulations.
//!
//! ```text
//! palsim [--trace sia|synergy] [--workload 1..8] [--load JOBS_PER_HOUR]
//!        [--jobs N] [--nodes N] [--gpus-per-node N]
//!        [--policy random-sticky|random|gandiva|tiresias|pmfirst|pal|adaptive-pal]
//!        [--sched fifo|las|srtf|srsf] [--locality L] [--seed S]
//!        [--csv] [--wait-times]
//! ```
//!
//! Examples:
//!
//! ```text
//! palsim --trace sia --workload 5 --policy pal
//! palsim --trace synergy --load 10 --nodes 64 --policy tiresias --sched las
//! ```

use pal::{AdaptivePal, PalPlacement, PmFirstPlacement};
use pal_bench::{longhorn_profile, PROFILE_SEED};
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::placement::{PackedPlacement, RandomPlacement};
use pal_sim::sched::{Fifo, Las, SchedulingPolicy, Srsf, Srtf};
use pal_sim::{PlacementPolicy, Scenario};
use pal_trace::{ModelCatalog, SiaPhillyConfig, SynergyConfig, Trace};

#[derive(Debug)]
struct Args {
    trace: String,
    workload: u32,
    load: f64,
    jobs: Option<usize>,
    nodes: usize,
    gpus_per_node: usize,
    policy: String,
    sched: String,
    locality: f64,
    seed: u64,
    csv: bool,
    wait_times: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            trace: "sia".into(),
            workload: 1,
            load: 10.0,
            jobs: None,
            nodes: 16,
            gpus_per_node: 4,
            policy: "pal".into(),
            sched: "fifo".into(),
            locality: 1.5,
            seed: PROFILE_SEED,
            csv: false,
            wait_times: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: palsim [--trace sia|synergy] [--workload 1..8] [--load JPH] \
         [--jobs N] [--nodes N] [--gpus-per-node N] \
         [--policy random-sticky|random|gandiva|tiresias|pmfirst|pal|adaptive-pal] \
         [--sched fifo|las|srtf|srsf] [--locality L] [--seed S] [--csv] [--wait-times]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--trace" => args.trace = value(&mut i),
            "--workload" => args.workload = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--load" => args.load = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--jobs" => args.jobs = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--nodes" => args.nodes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--gpus-per-node" => {
                args.gpus_per_node = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--policy" => args.policy = value(&mut i),
            "--sched" => args.sched = value(&mut i),
            "--locality" => args.locality = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--csv" => args.csv = true,
            "--wait-times" => args.wait_times = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn build_trace(args: &Args) -> Trace {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    match args.trace.as_str() {
        "sia" => {
            let mut cfg = SiaPhillyConfig::default();
            if let Some(n) = args.jobs {
                cfg.num_jobs = n;
            }
            cfg.generate(args.workload, &catalog)
        }
        "synergy" => {
            let mut cfg = SynergyConfig::default().at_load(args.load);
            if let Some(n) = args.jobs {
                cfg.num_jobs = n;
            }
            cfg.generate(&catalog)
        }
        other => {
            eprintln!("unknown trace family: {other}");
            usage()
        }
    }
}

fn main() {
    let args = parse_args();
    let topo = ClusterTopology::new(args.nodes, args.gpus_per_node);
    let profile = longhorn_profile(topo.total_gpus(), args.seed);
    let locality = LocalityModel::uniform(args.locality);
    let trace = build_trace(&args);

    let (sticky, policy): (bool, Box<dyn PlacementPolicy + Send>) = match args.policy.as_str() {
        "random-sticky" => (true, Box::new(RandomPlacement::new(args.seed))),
        "random" => (false, Box::new(RandomPlacement::new(args.seed))),
        "gandiva" => (false, Box::new(PackedPlacement::randomized(args.seed))),
        "tiresias" => (true, Box::new(PackedPlacement::randomized(args.seed))),
        "pmfirst" => (false, Box::new(PmFirstPlacement::new(&profile))),
        "pal" => (false, Box::new(PalPlacement::new(&profile))),
        "adaptive-pal" => (false, Box::new(AdaptivePal::new(&profile))),
        other => {
            eprintln!("unknown policy: {other}");
            usage()
        }
    };
    let sched: Box<dyn SchedulingPolicy + Send + Sync> = match args.sched.as_str() {
        "fifo" => Box::new(Fifo),
        "las" => Box::new(Las::default()),
        "srtf" => Box::new(Srtf),
        "srsf" => Box::new(Srsf),
        other => {
            eprintln!("unknown scheduler: {other}");
            usage()
        }
    };

    let r = match Scenario::new(trace, topo)
        .profile(profile)
        .locality(locality)
        .scheduler_boxed(sched)
        .placement_boxed(policy)
        .sticky(sticky)
        .run()
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };

    if args.csv {
        println!("job_id,model,class,gpu_demand,arrival_s,first_start_s,finish_s,jct_s,wait_s,migrations,preemptions");
        for rec in &r.records {
            println!(
                "{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.1},{},{}",
                rec.id.index(),
                rec.model,
                rec.class.label(),
                rec.gpu_demand,
                rec.arrival,
                rec.first_start,
                rec.finish,
                rec.jct(),
                rec.wait_time(),
                rec.migrations,
                rec.preemptions
            );
        }
        return;
    }

    println!("trace      : {} ({} jobs)", r.trace, r.records.len());
    println!(
        "cluster    : {} nodes x {} GPUs",
        args.nodes, args.gpus_per_node
    );
    println!("scheduler  : {}", r.scheduler);
    println!("placement  : {}", r.placement);
    println!("locality   : L_across = {}", args.locality);
    println!("avg JCT    : {:.2} h", r.avg_jct() / 3600.0);
    println!("p99 JCT    : {:.2} h", r.p99_jct() / 3600.0);
    println!("makespan   : {:.2} h", r.makespan() / 3600.0);
    println!(
        "utilization: {:.3} (effective), {:.3} (occupancy)",
        r.utilization(),
        r.occupancy()
    );
    println!("migrations : {}", r.total_migrations());
    println!("rounds     : {}", r.rounds);
    if args.wait_times {
        println!("\njob_id,wait_h");
        for (id, w) in r.wait_times() {
            println!("{id},{:.3}", w / 3600.0);
        }
    }
}
