//! `palsim` — command-line driver for simulations.
//!
//! Five modes:
//!
//! ```text
//! palsim run <campaign.toml|.json> [--csv] [--sequential] [--spill <dir>] [--metrics <dir>]
//! palsim what-if <campaign.toml|.json> --fork-at <seconds> [--csv] [--export <dir>]
//! palsim resume <spill-dir> [--csv]
//! palsim check <file-or-dir> [...]
//! palsim [--trace sia|synergy] [--policy pal] [...]        (legacy one-off)
//! ```
//!
//! `run` executes a declarative campaign file (see `configs/` for
//! commented examples and the README for the format reference); with
//! `--spill <dir>` each completed cell is streamed to `<dir>/results.jsonl`
//! under a digest-carrying manifest (bounded memory, crash-safe), and a
//! copy of the config lands in the directory so `resume` can rebuild the
//! campaign; with `--metrics <dir>` every cell streams its job-lifecycle
//! events (JSONL) and per-round table (CSV) to files as it runs, via the
//! engine's metrics-sink observer. `what-if` runs each scenario once up
//! to the fork time under its own placement, then replays the suffix from
//! that frozen state once per policy column — the counterfactual "what
//! would each policy do from *here*" — printing fork diagnostics (time,
//! rounds, state digest) to stderr and branch results to stdout;
//! `--export <dir>` also writes each scenario's fork state as a
//! versioned canonical-JSON state file. `resume` picks an interrupted
//! spill back up, re-running only the never-completed cells — the final
//! output is byte-identical to an uninterrupted run. `check` parses and
//! validates files — or every `.toml`/`.json` in a directory — without
//! running any cell. Bad arguments and unparseable configs exit nonzero
//! with a one-line diagnostic (`file:line:col: message` for syntax
//! errors, with a `caused by:` chain for wrapped errors); runtime
//! simulation failures exit 1, usage errors exit 2. Results go to
//! stdout; progress (cell and worker counts) goes to stderr, so piped
//! CSV stays clean.
//!
//! Examples:
//!
//! ```text
//! palsim run configs/paper_sweep.toml --csv
//! palsim run configs/paper_sweep.toml --spill out/sweep --metrics out/metrics
//! palsim what-if configs/paper_sweep.toml --fork-at 86400 --csv
//! palsim resume out/sweep --csv
//! palsim check configs/
//! palsim --trace sia --workload 5 --policy pal
//! ```

use pal::{AdaptivePal, PalPlacement, PmFirstPlacement};
use pal_bench::{longhorn_profile, PROFILE_SEED};
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_config::{
    campaign_from_path, render_chain, resume_spilled, save_state, spilled_config, spilled_results,
    MetricsDir, Registry, SpillSink,
};
use pal_gpumodel::GpuSpec;
use pal_sim::placement::{PackedPlacement, RandomPlacement};
use pal_sim::sched::{Fifo, Las, SchedulingPolicy, Srsf, Srtf};
use pal_sim::{CampaignResult, MemorySink, PlacementPolicy, Scenario};
use pal_trace::{ModelCatalog, SiaPhillyConfig, SynergyConfig, Trace};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(|s| s.as_str()) {
        Some("run") => cmd_run(&argv[1..]),
        Some("what-if") => cmd_what_if(&argv[1..]),
        Some("resume") => cmd_resume(&argv[1..]),
        Some("check") => cmd_check(&argv[1..]),
        _ => legacy_main(&argv),
    }
}

/// The CLI's registry: every builtin family plus the paper's Longhorn
/// profile, registered here (not inside `pal-config`) — the intended
/// pattern for downstream workload families.
fn cli_registry() -> Registry {
    let mut registry = Registry::with_builtins();
    registry.register_profile("longhorn", |args, ctx| {
        let seed = args.get_or("seed", PROFILE_SEED)?;
        Ok(longhorn_profile(ctx.gpus, seed))
    });
    registry
}

const RUN_USAGE: &str = "usage: palsim run <campaign.toml|.json> [--csv] [--sequential] \
     [--spill <dir>] [--metrics <dir>]";

fn cmd_run(argv: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut csv = false;
    let mut sequential = false;
    let mut spill: Option<PathBuf> = None;
    let mut metrics_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--csv" => csv = true,
            "--sequential" => sequential = true,
            "--spill" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => spill = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("palsim run: --spill needs a directory\n{RUN_USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--metrics" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => metrics_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("palsim run: --metrics needs a directory\n{RUN_USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{RUN_USAGE}");
                return ExitCode::from(2);
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => {
                eprintln!("palsim run: unexpected argument `{other}`\n{RUN_USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("{RUN_USAGE}");
        return ExitCode::from(2);
    };
    if sequential && spill.is_some() {
        eprintln!("palsim run: --sequential and --spill are mutually exclusive\n{RUN_USAGE}");
        return ExitCode::from(2);
    }
    let mut campaign = match campaign_from_path(path, &cli_registry()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("palsim: {}", render_chain(&e));
            return ExitCode::from(2);
        }
    };
    if campaign.num_cells() == 0 {
        eprintln!("palsim: {path}: campaign has no cells (no scenarios)");
        return ExitCode::from(2);
    }
    // Live per-cell event/round streaming through the engine's sink path.
    let metrics = match metrics_dir {
        Some(dir) => match MetricsDir::create(&dir) {
            Ok(metrics) => {
                let factory = metrics.clone();
                campaign = campaign.metrics_sinks(move |cell| factory.sink_for(cell));
                Some(metrics)
            }
            Err(e) => {
                eprintln!("palsim: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let results = if sequential {
        match campaign.run_sequential() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("palsim: campaign failed: {}", render_chain(&e));
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(dir) = spill {
        match run_spill(path, &campaign, &dir) {
            Ok(r) => r,
            Err(code) => return code,
        }
    } else {
        let sink = MemorySink::new(campaign.num_cells());
        match campaign.run_with_sink(&sink) {
            Ok(stats) => report_stats(&stats),
            Err(e) => {
                eprintln!("palsim: campaign failed: {}", render_chain(&e));
                return ExitCode::FAILURE;
            }
        }
        sink.into_results()
            .into_iter()
            .map(|slot| slot.expect("every cell completed without error"))
            .collect()
    };
    if let Some(err) = metrics.as_ref().and_then(MetricsDir::first_error) {
        eprintln!("palsim: metrics incomplete: {err}");
        return ExitCode::FAILURE;
    }
    output_results(&results, csv);
    ExitCode::SUCCESS
}

/// `palsim run --spill`: create the spill, copy the config file into it
/// (so `resume` can rebuild the campaign), and stream-run the grid.
fn run_spill(
    config_path: &str,
    campaign: &pal_sim::Campaign,
    dir: &Path,
) -> Result<Vec<CampaignResult>, ExitCode> {
    let sink = match SpillSink::create(dir, campaign) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("palsim: {}", render_chain(&e));
            return Err(ExitCode::from(2));
        }
    };
    // Byte copy, named by format: resume re-parses it exactly as run did.
    let ext = if config_path.ends_with(".json") {
        "json"
    } else {
        "toml"
    };
    let copy = dir.join(format!("campaign.{ext}"));
    if let Err(e) = std::fs::copy(config_path, &copy) {
        eprintln!(
            "palsim: cannot copy {config_path} to {}: {e}",
            copy.display()
        );
        return Err(ExitCode::from(2));
    }
    eprintln!(
        "palsim: spilling {} cells to {}",
        campaign.num_cells(),
        dir.display()
    );
    match campaign.run_with_sink(&sink) {
        Ok(stats) => report_stats(&stats),
        Err(e) => {
            eprintln!("palsim: campaign failed: {}", render_chain(&e));
            return Err(ExitCode::FAILURE);
        }
    }
    drop(sink);
    spilled_results(dir, campaign).map_err(|e| {
        eprintln!("palsim: {}", render_chain(&e));
        ExitCode::FAILURE
    })
}

const RESUME_USAGE: &str = "usage: palsim resume <spill-dir> [--csv]";

fn cmd_resume(argv: &[String]) -> ExitCode {
    let mut dir: Option<&str> = None;
    let mut csv = false;
    for arg in argv {
        match arg.as_str() {
            "--csv" => csv = true,
            "--help" | "-h" => {
                eprintln!("{RESUME_USAGE}");
                return ExitCode::from(2);
            }
            other if !other.starts_with('-') && dir.is_none() => dir = Some(other),
            other => {
                eprintln!("palsim resume: unexpected argument `{other}`\n{RESUME_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir.map(Path::new) else {
        eprintln!("{RESUME_USAGE}");
        return ExitCode::from(2);
    };
    let Some(config) = spilled_config(dir) else {
        eprintln!(
            "palsim: {}: no campaign.toml or campaign.json — not a spill directory?",
            dir.display()
        );
        return ExitCode::from(2);
    };
    let campaign = match campaign_from_path(&config, &cli_registry()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("palsim: {}", render_chain(&e));
            return ExitCode::from(2);
        }
    };
    match resume_spilled(&campaign, dir) {
        Ok((stats, results)) => {
            eprintln!("palsim: resumed {}:", dir.display());
            report_stats(&stats);
            output_results(&results, csv);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("palsim: {}", render_chain(&e));
            ExitCode::FAILURE
        }
    }
}

const WHAT_IF_USAGE: &str = "usage: palsim what-if <campaign.toml|.json> --fork-at <seconds> \
     [--csv] [--export <dir>]";

/// `palsim what-if`: fork every scenario of a campaign at one simulated
/// time and replay the suffix once per policy column
/// ([`pal_sim::Campaign::what_if`]). Fork diagnostics go to stderr;
/// branch results go to stdout through the same formatter `run` uses.
fn cmd_what_if(argv: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut fork_at: Option<f64> = None;
    let mut csv = false;
    let mut export: Option<PathBuf> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--csv" => csv = true,
            "--fork-at" => {
                i += 1;
                match argv.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) => fork_at = Some(t),
                    None => {
                        eprintln!(
                            "palsim what-if: --fork-at needs a time in seconds\n{WHAT_IF_USAGE}"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--export" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => export = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("palsim what-if: --export needs a directory\n{WHAT_IF_USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{WHAT_IF_USAGE}");
                return ExitCode::from(2);
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => {
                eprintln!("palsim what-if: unexpected argument `{other}`\n{WHAT_IF_USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let (Some(path), Some(fork_at)) = (path, fork_at) else {
        eprintln!("{WHAT_IF_USAGE}");
        return ExitCode::from(2);
    };
    let campaign = match campaign_from_path(path, &cli_registry()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("palsim: {}", render_chain(&e));
            return ExitCode::from(2);
        }
    };
    if campaign.num_cells() == 0 {
        eprintln!("palsim: {path}: campaign has no cells (no scenarios)");
        return ExitCode::from(2);
    }
    if let Some(dir) = &export {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("palsim: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    let report = match campaign.what_if(fork_at) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("palsim: what-if failed: {}", render_chain(&e));
            return ExitCode::FAILURE;
        }
    };
    let mut results = Vec::new();
    for sc in report.scenarios {
        eprintln!(
            "palsim: {}: forked at t={:.0}s after {} rounds, {} branches, \
             prefix digest {:016x}",
            sc.scenario,
            sc.forked_at,
            sc.prefix_rounds,
            sc.branches.len(),
            sc.prefix_digest
        );
        if let Some(dir) = &export {
            let file = dir.join(format!("{}.state.json", sanitize_file_stem(&sc.scenario)));
            if let Err(e) = save_state(&file, &sc.fork_state) {
                eprintln!("palsim: {}", render_chain(&e));
                return ExitCode::FAILURE;
            }
            eprintln!("palsim: {}: fork state -> {}", sc.scenario, file.display());
        }
        results.extend(sc.branches);
    }
    output_results(&results, csv);
    ExitCode::SUCCESS
}

fn sanitize_file_stem(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One implementation of the run-progress line every campaign-driving
/// mode (`run`, `run --spill`, `resume`) reports.
fn report_stats(stats: &pal_sim::CampaignRunStats) {
    if stats.cells_skipped > 0 {
        eprintln!(
            "palsim: {} cells already done, ran {} on {} workers",
            stats.cells_skipped, stats.cells_run, stats.workers
        );
    } else {
        eprintln!(
            "palsim: ran {} cells on {} workers",
            stats.cells_run, stats.workers
        );
    }
}

/// One place that picks the stdout format for campaign results.
fn output_results(results: &[CampaignResult], csv: bool) {
    if csv {
        print_csv(results);
    } else {
        print_table(results);
    }
}

fn print_csv(results: &[CampaignResult]) {
    println!(
        "scenario,policy,seed,jobs,avg_jct_s,p99_jct_s,makespan_s,\
         utilization,occupancy,migrations,rounds"
    );
    for r in results {
        // Serving-only cells have no training records; JCT columns stay
        // empty rather than inventing a number.
        let jct = if r.result.records.is_empty() {
            ",".into()
        } else {
            format!("{:.3},{:.3}", r.result.avg_jct(), r.result.p99_jct())
        };
        println!(
            "{},{},{},{},{},{:.3},{:.5},{:.5},{},{}",
            r.scenario,
            r.policy,
            r.seed,
            r.result.records.len(),
            jct,
            r.result.makespan(),
            r.result.utilization(),
            r.result.occupancy(),
            r.result.total_migrations(),
            r.result.rounds,
        );
    }
}

fn print_table(results: &[CampaignResult]) {
    for r in results {
        if r.result.records.is_empty() {
            // Serving-only cell: no training jobs, so no JCT stats.
            println!(
                "{:<28} {:<20} (no training jobs)  makespan {:>8.2} h",
                r.scenario,
                r.policy,
                r.result.makespan() / 3600.0,
            );
        } else {
            println!(
                "{:<28} {:<20} avg JCT {:>8.2} h  p99 {:>8.2} h  makespan {:>8.2} h  util {:.3}",
                r.scenario,
                r.policy,
                r.result.avg_jct() / 3600.0,
                r.result.p99_jct() / 3600.0,
                r.result.makespan() / 3600.0,
                r.result.utilization(),
            );
        }
        for s in &r.result.serving {
            println!(
                "{:<28} {:<20}   serving {}: goodput {:.2} req/s  \
                 SLO {:.1}%  p99 {:.0} ms",
                "",
                "",
                s.workload,
                s.goodput(),
                s.slo_attainment() * 100.0,
                s.latency_p99 * 1e3,
            );
        }
    }
}

const CHECK_USAGE: &str = "usage: palsim check <campaign-file-or-dir> [...]";

fn cmd_check(argv: &[String]) -> ExitCode {
    if argv.is_empty() || argv.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{CHECK_USAGE}");
        return ExitCode::from(2);
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in argv {
        let path = Path::new(arg);
        if path.is_dir() {
            let mut found = Vec::new();
            match std::fs::read_dir(path) {
                Ok(entries) => {
                    for entry in entries.flatten() {
                        let p = entry.path();
                        let ext = p.extension().and_then(|e| e.to_str());
                        if matches!(ext, Some("toml") | Some("json")) {
                            found.push(p);
                        }
                    }
                }
                Err(e) => {
                    eprintln!("palsim: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if found.is_empty() {
                eprintln!("palsim: {}: no .toml or .json files", path.display());
                return ExitCode::from(2);
            }
            found.sort();
            files.extend(found);
        } else {
            files.push(path.to_path_buf());
        }
    }
    let registry = cli_registry();
    let mut failed = false;
    for file in &files {
        match campaign_from_path(file, &registry) {
            Ok(campaign) => {
                println!("{}: OK ({} cells)", file.display(), campaign.num_cells());
            }
            Err(e) => {
                eprintln!("{}", render_chain(&e));
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------
// Legacy one-off mode: flags building a single scenario directly.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Args {
    trace: String,
    workload: u32,
    load: f64,
    jobs: Option<usize>,
    nodes: usize,
    gpus_per_node: usize,
    policy: String,
    sched: String,
    locality: f64,
    seed: u64,
    csv: bool,
    wait_times: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            trace: "sia".into(),
            workload: 1,
            load: 10.0,
            jobs: None,
            nodes: 16,
            gpus_per_node: 4,
            policy: "pal".into(),
            sched: "fifo".into(),
            locality: 1.5,
            seed: PROFILE_SEED,
            csv: false,
            wait_times: false,
        }
    }
}

const LEGACY_USAGE: &str = "usage: palsim run <campaign.toml|.json> [--csv] [--sequential] \
[--spill <dir>]\n\
     | palsim resume <spill-dir> [--csv]\n\
     | palsim check <campaign-file-or-dir> [...]\n\
     | palsim [--trace sia|synergy] [--workload 1..8] [--load JPH] \
[--jobs N] [--nodes N] [--gpus-per-node N] \
[--policy random-sticky|random|gandiva|tiresias|pmfirst|pal|adaptive-pal] \
[--sched fifo|las|srtf|srsf] [--locality L] [--seed S] [--csv] [--wait-times]";

/// Parse legacy flags; `Err` carries the one-line diagnostic.
fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> Result<&String, String> {
            i += 1;
            argv.get(i)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        fn parsed<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
            v.parse()
                .map_err(|_| format!("flag {flag}: bad value `{v}`"))
        }
        match flag {
            "--trace" => args.trace = value()?.clone(),
            "--workload" => args.workload = parsed(flag, value()?)?,
            "--load" => args.load = parsed(flag, value()?)?,
            "--jobs" => args.jobs = Some(parsed(flag, value()?)?),
            "--nodes" => args.nodes = parsed(flag, value()?)?,
            "--gpus-per-node" => args.gpus_per_node = parsed(flag, value()?)?,
            "--policy" => args.policy = value()?.clone(),
            "--sched" => args.sched = value()?.clone(),
            "--locality" => args.locality = parsed(flag, value()?)?,
            "--seed" => args.seed = parsed(flag, value()?)?,
            "--csv" => args.csv = true,
            "--wait-times" => args.wait_times = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn build_trace(args: &Args) -> Result<Trace, String> {
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    match args.trace.as_str() {
        "sia" => {
            if !(1..=8).contains(&args.workload) {
                return Err(format!("--workload must be in 1..8, got {}", args.workload));
            }
            let mut cfg = SiaPhillyConfig::default();
            if let Some(n) = args.jobs {
                cfg.num_jobs = n;
            }
            Ok(cfg.generate(args.workload, &catalog))
        }
        "synergy" => {
            let mut cfg = SynergyConfig::default().at_load(args.load);
            if let Some(n) = args.jobs {
                cfg.num_jobs = n;
            }
            Ok(cfg.generate(&catalog))
        }
        other => Err(format!("unknown trace family: {other}")),
    }
}

fn legacy_main(argv: &[String]) -> ExitCode {
    let usage_err = |msg: &str| {
        if !msg.is_empty() {
            eprintln!("palsim: {msg}");
        }
        eprintln!("{LEGACY_USAGE}");
        ExitCode::from(2)
    };
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => return usage_err(&msg),
    };
    if args.nodes == 0 || args.gpus_per_node == 0 {
        return usage_err("--nodes and --gpus-per-node must be positive");
    }
    let topo = ClusterTopology::new(args.nodes, args.gpus_per_node);
    let profile = longhorn_profile(topo.total_gpus(), args.seed);
    let locality = LocalityModel::uniform(args.locality);
    let trace = match build_trace(&args) {
        Ok(t) => t,
        Err(msg) => return usage_err(&msg),
    };

    let (sticky, policy): (bool, Box<dyn PlacementPolicy + Send>) = match args.policy.as_str() {
        "random-sticky" => (true, Box::new(RandomPlacement::new(args.seed))),
        "random" => (false, Box::new(RandomPlacement::new(args.seed))),
        "gandiva" => (false, Box::new(PackedPlacement::randomized(args.seed))),
        "tiresias" => (true, Box::new(PackedPlacement::randomized(args.seed))),
        "pmfirst" => (false, Box::new(PmFirstPlacement::new(&profile))),
        "pal" => (false, Box::new(PalPlacement::new(&profile))),
        "adaptive-pal" => (false, Box::new(AdaptivePal::new(&profile))),
        other => return usage_err(&format!("unknown policy: {other}")),
    };
    let sched: Box<dyn SchedulingPolicy + Send + Sync> = match args.sched.as_str() {
        "fifo" => Box::new(Fifo),
        "las" => Box::new(Las::default()),
        "srtf" => Box::new(Srtf),
        "srsf" => Box::new(Srsf),
        other => return usage_err(&format!("unknown scheduler: {other}")),
    };

    let r = match Scenario::new(trace, topo)
        .profile(profile)
        .locality(locality)
        .scheduler_boxed(sched)
        .placement_boxed(policy)
        .sticky(sticky)
        .run()
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("palsim: simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.csv {
        println!("job_id,model,class,gpu_demand,arrival_s,first_start_s,finish_s,jct_s,wait_s,migrations,preemptions");
        for rec in &r.records {
            println!(
                "{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.1},{},{}",
                rec.id.index(),
                rec.model,
                rec.class.label(),
                rec.gpu_demand,
                rec.arrival,
                rec.first_start,
                rec.finish,
                rec.jct(),
                rec.wait_time(),
                rec.migrations,
                rec.preemptions
            );
        }
        return ExitCode::SUCCESS;
    }

    println!("trace      : {} ({} jobs)", r.trace, r.records.len());
    println!(
        "cluster    : {} nodes x {} GPUs",
        args.nodes, args.gpus_per_node
    );
    println!("scheduler  : {}", r.scheduler);
    println!("placement  : {}", r.placement);
    println!("locality   : L_across = {}", args.locality);
    println!("avg JCT    : {:.2} h", r.avg_jct() / 3600.0);
    println!("p99 JCT    : {:.2} h", r.p99_jct() / 3600.0);
    println!("makespan   : {:.2} h", r.makespan() / 3600.0);
    println!(
        "utilization: {:.3} (effective), {:.3} (occupancy)",
        r.utilization(),
        r.occupancy()
    );
    println!("migrations : {}", r.total_migrations());
    println!("rounds     : {}", r.rounds);
    if args.wait_times {
        println!("\njob_id,wait_h");
        for (id, w) in r.wait_times() {
            println!("{id},{:.3}", w / 3600.0);
        }
    }
    ExitCode::SUCCESS
}
