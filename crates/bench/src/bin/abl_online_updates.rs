//! Ablation: online PM-score updates (the Section V-A future-work
//! extension) under stale profiles.
//!
//! Scenario: two nodes' class-A GPUs degraded 3× after profiling (cooling
//! failure, re-racked hardware, …). The placement policy's profile is
//! stale; ground truth is not. Arms:
//!
//! - **PAL (stale)**: the paper's policy with the outdated profile,
//! - **Adaptive-PAL**: starts stale, learns from per-round telemetry,
//! - **PAL (oracle)**: given the true profile — the recoverable optimum.

use pal::{AdaptivePal, PalPlacement};
use pal_bench::{frontera_testbed_profile, hours, PROFILE_SEED};
use pal_cluster::{ClusterTopology, JobClass, LocalityModel, NodeId};
use pal_gpumodel::GpuSpec;
use pal_sim::{PlacementPolicy, Scenario};
use pal_trace::{ModelCatalog, SiaPhillyConfig};

fn main() {
    let topo = ClusterTopology::sia_64();
    let stale = frontera_testbed_profile(PROFILE_SEED);
    let mut degraded_gpus = topo.gpus_of(NodeId(2));
    degraded_gpus.extend(topo.gpus_of(NodeId(9)));
    let truth = stale.perturbed(JobClass::A, &degraded_gpus, 3.0);
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::quadro_rtx5000());

    println!("# Ablation: online PM-score updates under a stale profile");
    println!("# (8 nodes' worth of class-A capacity degraded 3x after profiling)");
    println!("workload,policy,avg_jct_h,p99_jct_h,makespan_h");
    for w in 1..=4u32 {
        let trace = SiaPhillyConfig::default().generate(w, &catalog);
        let arms: Vec<(
            &str,
            Box<dyn PlacementPolicy + Send>,
            &pal_cluster::VariabilityProfile,
        )> = vec![
            ("PAL-stale", Box::new(PalPlacement::new(&stale)), &stale),
            ("Adaptive-PAL", Box::new(AdaptivePal::new(&stale)), &stale),
            ("PAL-oracle", Box::new(PalPlacement::new(&truth)), &truth),
        ];
        for (name, policy, visible) in arms {
            let r = Scenario::new(trace.clone(), topo)
                .profile(visible.clone())
                .truth(truth.clone())
                .locality(locality.clone())
                .placement_boxed(policy)
                .run()
                .expect("ablation scenario misconfigured");
            println!(
                "{w},{name},{:.2},{:.2},{:.2}",
                hours(r.avg_jct()),
                hours(r.p99_jct()),
                hours(r.makespan())
            );
        }
    }
    println!();
    println!("# Expected shape: stale worst; adaptive recovers the gap (~ oracle re-profiling)");
}
