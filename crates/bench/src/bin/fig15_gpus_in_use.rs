//! Figure 15: number of GPUs in use at every scheduling epoch for Synergy
//! at 8 and 10 jobs/hour, Tiresias vs PAL (FIFO, 256 GPUs).
//!
//! PAL's utilization curve "runs ahead" of Tiresias — it finishes the same
//! work earlier, freeing resources sooner.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Fifo;
use pal_trace::{ModelCatalog, SynergyConfig};

fn main() {
    let topo = ClusterTopology::synergy_256();
    let profile = longhorn_profile(256, PROFILE_SEED);
    let locality = LocalityModel::uniform(1.7);
    let catalog = ModelCatalog::table2(&GpuSpec::v100());

    println!("# Figure 15: GPUs in use over time");
    println!("jobs_per_hour,policy,time_s,gpus_in_use");
    for load in [8.0, 10.0] {
        let trace = SynergyConfig::default().at_load(load).generate(&catalog);
        for kind in [PolicyKind::Tiresias, PolicyKind::Pal] {
            let r = run_policy(&trace, topo, &profile, &locality, Fifo, kind);
            let span = r.makespan();
            for (t, v) in r.gpus_in_use.resample(0.0, span, 200) {
                println!("{load},{},{t:.0},{v:.0}", kind.name());
            }
        }
    }
}
