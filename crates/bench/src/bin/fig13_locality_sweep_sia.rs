//! Figure 13: average JCT for the Sia workloads as the inter-node locality
//! penalty varies from 1.0 to 3.0 (uniform `L_across`, FIFO, 64 GPUs).
//!
//! As the penalty rises, packing-first baselines close the gap to PM-First,
//! while PAL — which prices locality into its L×V traversal — keeps its
//! lead.

use pal_bench::*;
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::sched::Fifo;
use pal_trace::{ModelCatalog, SiaPhillyConfig};

fn main() {
    let topo = ClusterTopology::sia_64();
    let profile = longhorn_profile(64, PROFILE_SEED);
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let traces: Vec<_> = SiaPhillyConfig::default().generate_all(&catalog);

    println!("# Figure 13: avg JCT (hours, mean over the 8 Sia workloads) vs locality penalty");
    println!("locality_penalty,policy,avg_jct_h");
    for penalty in [1.0, 1.5, 2.0, 2.5, 3.0] {
        let locality = LocalityModel::uniform(penalty);
        for kind in PolicyKind::ALL {
            let jcts: Vec<f64> = traces
                .iter()
                .map(|t| run_policy(t, topo, &profile, &locality, Fifo, kind).avg_jct())
                .collect();
            let mean = pal_stats::mean(&jcts).expect("eight traces");
            println!("C{penalty:.1},{},{:.2}", kind.name(), hours(mean));
        }
    }
    println!();
    println!(
        "# (PM-First's edge over Tiresias should shrink with the penalty; PAL's should persist)"
    );
}
