//! Ablation: sticky variants of PM-First and PAL.
//!
//! The paper runs its policies non-sticky "to ensure jobs can migrate to
//! better GPUs in each scheduling round" (Section IV-A1). This ablation
//! quantifies that choice by also running both policies sticky.

use pal::{PalPlacement, PmFirstPlacement};
use pal_bench::{hours, longhorn_profile, PROFILE_SEED};
use pal_cluster::{ClusterTopology, LocalityModel};
use pal_gpumodel::GpuSpec;
use pal_sim::{PlacementPolicy, Scenario};
use pal_trace::{ModelCatalog, SiaPhillyConfig};

fn main() {
    let topo = ClusterTopology::sia_64();
    let profile = longhorn_profile(64, PROFILE_SEED);
    let locality = LocalityModel::frontera_per_model();
    let catalog = ModelCatalog::table2(&GpuSpec::v100());
    let traces: Vec<_> = (1..=4u32)
        .map(|w| SiaPhillyConfig::default().generate(w, &catalog))
        .collect();

    println!("# Ablation: sticky vs non-sticky PM-First and PAL (mean over 4 Sia workloads)");
    println!("policy,mode,avg_jct_h,total_migrations");
    for (name, sticky) in [
        ("PM-First", false),
        ("PM-First", true),
        ("PAL", false),
        ("PAL", true),
    ] {
        let mut jcts = Vec::new();
        let mut migrations = 0u64;
        for trace in &traces {
            let policy: Box<dyn PlacementPolicy + Send> = match name {
                "PM-First" => Box::new(PmFirstPlacement::new(&profile)),
                _ => Box::new(PalPlacement::new(&profile)),
            };
            let r = Scenario::new(trace.clone(), topo)
                .profile(profile.clone())
                .locality(locality.clone())
                .placement_boxed(policy)
                .sticky(sticky)
                .run()
                .expect("ablation scenario misconfigured");
            jcts.push(r.avg_jct());
            migrations += r.total_migrations();
        }
        println!(
            "{name},{},{:.2},{migrations}",
            if sticky { "Sticky" } else { "Non-Sticky" },
            hours(pal_stats::mean(&jcts).expect("non-empty"))
        );
    }
}
