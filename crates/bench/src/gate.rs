//! The CI perf-regression gate over `BENCH_engine.json`.
//!
//! [`check`] compares a freshly measured bench file against the committed
//! baseline and reports hard failures across the gated sections
//! ([`GATED_SECTIONS`]: `engine_rounds`, `campaign_startup`,
//! `campaign_throughput`, `serving_latency`, and `observer_overhead`):
//!
//! - any **deterministic** metric (the `rounds/*` simulated/executed
//!   round counts, the `builds/*` PM-score table build counts, the
//!   `cells/*` campaign cells-completed counts of the fleet-execution
//!   grid, the `served/*` serving outcomes of a seeded 1M-request
//!   stream, the `overhead/*` within-run null-sink wall-time ratio —
//!   bit-exact or machine-common-mode-free by construction) more than
//!   [`DETERMINISTIC_TOLERANCE`] (1.05×) over its baseline — these need
//!   no noise allowance, so even a small skip-efficiency or
//!   cache-efficiency regression fails; intentional changes to the bench
//!   scenario or engine re-commit the refreshed baseline instead;
//! - any *wall-time* metric more than `tolerance ×` the run's **median**
//!   wall-time ratio (taken across every gated section, so all the
//!   metrics vote on the common mode): the baseline is usually committed
//!   from a different machine than the CI runner, so the common-mode
//!   speed difference shows up in every metric equally and the median
//!   cancels it, while a real regression — an accidentally quadratic
//!   round loop, skipping silently disabled on one path, per-cell table
//!   rebuilds sneaking back into campaign start-up — is differential and
//!   sticks out (a backstop still fails any wall-time metric beyond
//!   `tolerance × `[`MACHINE_SPEED_ALLOWANCE`]` ×` baseline absolutely,
//!   so a uniform global slowdown cannot hide in the median);
//! - any `placement_hot_path` `allocs_per_place/*` metric above zero —
//!   the zero-allocation hot-path contract is absolute.
//!
//! `mem/*` keys (peak-RSS readings from the large-scale benches) are
//! **informational**: they vary with allocator and kernel behaviour in
//! ways wall-time normalization doesn't model, so the gate prints them
//! for trend-watching but never fails on them, and they are excluded
//! from the wall-time median vote.
//!
//! The tolerance defaults to [`DEFAULT_TOLERANCE`] (2×): generous enough
//! that shared-runner noise never trips it, tight enough that a real
//! regression fails the build. Metrics present on only one side are
//! reported but never fail the gate, so adding or retiring a bench
//! doesn't require lockstep baseline edits.

use crate::bench_json::BenchSections;

/// Default regression tolerance: fail when a metric exceeds 2× its
/// reference (baseline for deterministic counts, median-normalized
/// baseline for wall times).
pub const DEFAULT_TOLERANCE: f64 = 2.0;

/// How much *uniform* machine-speed difference between the baseline's
/// machine and the current runner is tolerated before the absolute
/// wall-time backstop fires (`tolerance × this × baseline`).
pub const MACHINE_SPEED_ALLOWANCE: f64 = 4.0;

/// Tolerance for the deterministic count metrics (`rounds/*`,
/// `builds/*`): they are bit-exact re-runs of the same computation, so
/// anything beyond a rounding hair is a real skip- or cache-efficiency
/// regression and fails regardless of the wall-time `--tolerance`.
pub const DETERMINISTIC_TOLERANCE: f64 = 1.05;

/// The sections gated relative to the baseline, each with the key prefix
/// of its deterministic (machine-independent) count metrics; every other
/// key in a gated section is treated as a wall time.
pub const GATED_SECTIONS: &[(&str, &str)] = &[
    ("engine_rounds", "rounds/"),
    ("campaign_startup", "builds/"),
    ("campaign_throughput", "cells/"),
    ("serving_latency", "served/"),
    ("observer_overhead", "overhead/"),
];

/// Key prefix of informational metrics (peak-RSS readings): reported in
/// the gate output for trend-watching, but never gated and excluded from
/// the wall-time median.
pub const INFORMATIONAL_PREFIX: &str = "mem/";

/// The section holding the absolute zero-allocation contract.
const ALLOC_SECTION: &str = "placement_hot_path";
/// Key prefix of the allocation-count metrics within [`ALLOC_SECTION`].
const ALLOC_PREFIX: &str = "allocs_per_place/";

/// Outcome of one gate run: every comparison made, and the failures.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Human-readable line per metric compared (pass and fail alike).
    pub lines: Vec<String>,
    /// Human-readable description of each hard failure.
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether the gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The lower median of the wall-time ratios: robust against a minority
/// of regressed metrics inflating their own reference, and exact for the
/// common case of a uniform machine-speed factor.
fn median_ratio(ratios: &mut [f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("NaN bench ratio"));
    Some(ratios[(ratios.len() - 1) / 2])
}

/// Compare `current` against `baseline` under the given tolerance.
pub fn check(baseline: &BenchSections, current: &BenchSections, tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    let empty = Default::default();

    // One global median across every gated section's wall-time metrics:
    // the machine-speed common mode is a property of the run, so all the
    // sections vote on it together.
    let mut wall_ratios: Vec<f64> = GATED_SECTIONS
        .iter()
        .flat_map(|&(section, det_prefix)| {
            let base = baseline.get(section).unwrap_or(&empty);
            let cur = current.get(section).unwrap_or(&empty);
            cur.iter()
                .filter(move |(key, _)| {
                    !key.starts_with(det_prefix) && !key.starts_with(INFORMATIONAL_PREFIX)
                })
                .filter_map(|(key, &now)| {
                    base.get(key)
                        .filter(|&&was| was > 0.0)
                        .map(|&was| now / was)
                })
        })
        .collect();
    let median = median_ratio(&mut wall_ratios);
    if let Some(m) = median {
        report.lines.push(format!(
            "median wall-time ratio {m:.2}x across gated sections (machine-speed common mode)"
        ));
    }
    for &(section, det_prefix) in GATED_SECTIONS {
        let base = baseline.get(section).unwrap_or(&empty);
        let cur = current.get(section).unwrap_or(&empty);
        for (key, &now) in cur {
            if key.starts_with(INFORMATIONAL_PREFIX) {
                let vs = match base.get(key) {
                    Some(&was) if was > 0.0 => format!(" ({:.2}x baseline {was:.1})", now / was),
                    _ => String::new(),
                };
                report
                    .lines
                    .push(format!("{section}/{key}: {now:.1}{vs} — informational"));
                continue;
            }
            match base.get(key) {
                Some(&was) if was > 0.0 => {
                    let ratio = now / was;
                    if key.starts_with(det_prefix) {
                        // Deterministic counts: gate near-exactly — no noise
                        // allowance applies to a bit-exact re-run.
                        if ratio > DETERMINISTIC_TOLERANCE {
                            report.failures.push(format!(
                                "{section}/{key}: {now:.1} is {ratio:.2}x baseline {was:.1} \
                                 (deterministic count, tolerance {DETERMINISTIC_TOLERANCE}x)"
                            ));
                        } else {
                            report
                                .lines
                                .push(format!("{section}/{key}: {ratio:.2}x baseline — ok"));
                        }
                    } else {
                        // Wall times: gate against the median-normalized ratio
                        // (cancels cross-machine speed), with an absolute
                        // backstop so a uniform slowdown can't hide in it.
                        let median = median.expect("key contributed a ratio");
                        let normalized = ratio / median;
                        if normalized > tolerance {
                            report.failures.push(format!(
                                "{section}/{key}: {now:.1} is {ratio:.2}x baseline {was:.1}, \
                                 {normalized:.2}x this run's median ratio (tolerance {tolerance}x)"
                            ));
                        } else if ratio > tolerance * MACHINE_SPEED_ALLOWANCE {
                            report.failures.push(format!(
                                "{section}/{key}: {now:.1} is {ratio:.2}x baseline {was:.1}, \
                                 past the absolute backstop ({tolerance}x tolerance × \
                                 {MACHINE_SPEED_ALLOWANCE}x machine allowance)"
                            ));
                        } else {
                            report.lines.push(format!(
                                "{section}/{key}: {normalized:.2}x median-normalized — ok"
                            ));
                        }
                    }
                }
                Some(_) => report
                    .lines
                    .push(format!("{section}/{key}: baseline is zero — skipped")),
                None => report.lines.push(format!(
                    "{section}/{key}: no baseline (new metric) — skipped"
                )),
            }
        }
        for key in base.keys().filter(|k| !cur.contains_key(*k)) {
            report.lines.push(format!(
                "{section}/{key}: missing from current run — skipped"
            ));
        }
    }

    let allocs = current.get(ALLOC_SECTION).unwrap_or(&empty);
    for (key, &now) in allocs.iter().filter(|(k, _)| k.starts_with(ALLOC_PREFIX)) {
        if now > 0.0 {
            report.failures.push(format!(
                "{ALLOC_SECTION}/{key}: {now} allocations per placement (must be 0)"
            ));
        } else {
            report
                .lines
                .push(format!("{ALLOC_SECTION}/{key}: 0 allocations — ok"));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sections(entries: &[(&str, &[(&str, f64)])]) -> BenchSections {
        entries
            .iter()
            .map(|(section, kvs)| {
                (
                    section.to_string(),
                    kvs.iter()
                        .map(|&(k, v)| (k.to_string(), v))
                        .collect::<BTreeMap<_, _>>(),
                )
            })
            .collect()
    }

    #[test]
    fn identical_numbers_pass() {
        let s = sections(&[
            ("engine_rounds", &[("engine_step/saturated_round", 1e5)]),
            ("placement_hot_path", &[("allocs_per_place/PAL", 0.0)]),
        ]);
        let r = check(&s, &s, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.lines.len(), 3, "median line + 2 metrics: {:?}", r.lines);
    }

    #[test]
    fn uniform_machine_speed_difference_passes() {
        // Baseline committed on a machine 2.5x faster than the runner:
        // every wall-time ratio shares the factor, the median cancels it.
        let base = sections(&[(
            "engine_rounds",
            &[("a/b", 100.0), ("a/c", 40.0), ("a/d", 70.0)],
        )]);
        let cur = sections(&[(
            "engine_rounds",
            &[("a/b", 250.0), ("a/c", 100.0), ("a/d", 175.0)],
        )]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn uniform_catastrophic_slowdown_hits_the_backstop() {
        // A 10x-across-the-board regression cannot hide in the median.
        let base = sections(&[("engine_rounds", &[("a/b", 100.0), ("a/c", 40.0)])]);
        let cur = sections(&[("engine_rounds", &[("a/b", 1000.0), ("a/c", 400.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert_eq!(r.failures.len(), 2);
        assert!(r.failures[0].contains("backstop"), "{}", r.failures[0]);
    }

    #[test]
    fn noise_within_tolerance_passes() {
        let base = sections(&[("engine_rounds", &[("a/b", 100.0)])]);
        let cur = sections(&[("engine_rounds", &[("a/b", 199.0)])]);
        assert!(check(&base, &cur, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn synthetic_2x_regression_fails() {
        let base = sections(&[("engine_rounds", &[("a/b", 100.0), ("a/c", 50.0)])]);
        let cur = sections(&[("engine_rounds", &[("a/b", 201.0), ("a/c", 50.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("a/b"), "{}", r.failures[0]);
    }

    #[test]
    fn executed_rounds_regression_fails_like_throughput() {
        // Event-driven skipping silently disabled: executed rounds jump
        // back to the simulated count.
        let base = sections(&[(
            "engine_rounds",
            &[("rounds/sticky_drain/executed_event_on", 150.0)],
        )]);
        let cur = sections(&[(
            "engine_rounds",
            &[("rounds/sticky_drain/executed_event_on", 3000.0)],
        )]);
        assert!(!check(&base, &cur, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn even_small_executed_rounds_regressions_fail() {
        // The counts are bit-exact, so the wall-time noise tolerance does
        // not apply: eroding the skip win by 1.5x must fail.
        let base = sections(&[(
            "engine_rounds",
            &[("rounds/sticky_drain/executed_event_on", 100.0)],
        )]);
        let cur = sections(&[(
            "engine_rounds",
            &[("rounds/sticky_drain/executed_event_on", 150.0)],
        )]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(r.failures[0].contains("deterministic count"));
    }

    #[test]
    fn table_build_count_regression_fails_bit_exactly() {
        // The cache silently bypassed: the 4×4 grid's one build becomes
        // eight. Deterministic, so no wall-time noise allowance applies.
        let base = sections(&[("campaign_startup", &[("builds/4x4_one_profile", 1.0)])]);
        let cur = sections(&[("campaign_startup", &[("builds/4x4_one_profile", 8.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("deterministic count"),
            "{}",
            r.failures[0]
        );
    }

    #[test]
    fn campaign_wall_times_share_the_global_median() {
        // Both gated sections 3x slower (machine speed): the shared median
        // cancels the factor for campaign_startup's lone wall metric just
        // as it does for engine_rounds'.
        let base = sections(&[
            ("engine_rounds", &[("a/b", 100.0), ("a/c", 40.0)]),
            (
                "campaign_startup",
                &[("campaign_grid/4x4/shared_cache", 50.0)],
            ),
        ]);
        let cur = sections(&[
            ("engine_rounds", &[("a/b", 300.0), ("a/c", 120.0)]),
            (
                "campaign_startup",
                &[("campaign_grid/4x4/shared_cache", 150.0)],
            ),
        ]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{:?}", r.failures);
        // ... while a campaign-only differential regression fails.
        let cur = sections(&[
            ("engine_rounds", &[("a/b", 100.0), ("a/c", 40.0)]),
            (
                "campaign_startup",
                &[("campaign_grid/4x4/shared_cache", 201.0)],
            ),
        ]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("campaign_startup"),
            "{}",
            r.failures[0]
        );
    }

    #[test]
    fn cells_completed_drift_fails_bit_exactly() {
        // The 16×16 grid must always complete all 256 cells. Upward
        // drift (cells running more than once) fails here; *dropped*
        // cells read below baseline, which this one-sided gate does not
        // fire on — the bench itself asserts full completion and fails
        // the CI step directly in that case.
        let base = sections(&[("campaign_throughput", &[("cells/16x16/completed", 256.0)])]);
        let cur = sections(&[("campaign_throughput", &[("cells/16x16/completed", 248.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(r.passed(), "under-baseline counts are the bench's assert");
        let cur = sections(&[("campaign_throughput", &[("cells/16x16/completed", 512.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("deterministic count"),
            "{}",
            r.failures[0]
        );
    }

    #[test]
    fn serving_outcome_drift_fails_bit_exactly() {
        // A sampler or batcher change that shifts the seeded 1M-request
        // run's p99 is a semantic change, not noise: deterministic gating
        // applies, wall-time tolerance does not.
        let base = sections(&[("serving_latency", &[("served/1m/p99_latency_ms", 40.0)])]);
        let cur = sections(&[("serving_latency", &[("served/1m/p99_latency_ms", 55.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("deterministic count"),
            "{}",
            r.failures[0]
        );
        // The wall-time key in the same section stays noise-tolerant.
        let base = sections(&[(
            "serving_latency",
            &[("serving_run/open_loop/1m_requests", 100.0)],
        )]);
        let cur = sections(&[(
            "serving_latency",
            &[("serving_run/open_loop/1m_requests", 180.0)],
        )]);
        assert!(check(&base, &cur, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn null_sink_overhead_ratio_gates_without_wall_noise_allowance() {
        // The ratio is machine-common-mode-free (both sides run
        // interleaved on the same machine), so the 2x wall tolerance does
        // not apply: a 20% null-sink tax must fail against the 1.0
        // baseline, while sub-5% measurement jitter passes.
        let base = sections(&[("observer_overhead", &[("overhead/null_sink_ratio", 1.0)])]);
        let cur = sections(&[("observer_overhead", &[("overhead/null_sink_ratio", 1.04)])]);
        assert!(check(&base, &cur, DEFAULT_TOLERANCE).passed());
        let cur = sections(&[("observer_overhead", &[("overhead/null_sink_ratio", 1.2)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("deterministic count"),
            "{}",
            r.failures[0]
        );
    }

    #[test]
    fn any_nonzero_alloc_count_fails() {
        let s = sections(&[("placement_hot_path", &[("allocs_per_place/PAL", 0.5)])]);
        let r = check(&s, &s, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(r.failures[0].contains("allocations per placement"));
    }

    #[test]
    fn new_and_retired_metrics_are_reported_not_failed() {
        let base = sections(&[("engine_rounds", &[("old/metric", 10.0)])]);
        let cur = sections(&[("engine_rounds", &[("new/metric", 10.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(r.passed());
        assert_eq!(r.lines.len(), 2);
    }

    #[test]
    fn mem_metrics_are_informational_never_gated() {
        // A 10x peak-RSS blow-up is reported but does not fail the gate —
        // allocator behaviour is too machine-dependent to hard-gate.
        let base = sections(&[("engine_rounds", &[("mem/peak_rss_mb/large_100k", 100.0)])]);
        let cur = sections(&[("engine_rounds", &[("mem/peak_rss_mb/large_100k", 1000.0)])]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(
            r.lines.iter().any(|l| l.contains("informational")),
            "{:?}",
            r.lines
        );
    }

    #[test]
    fn mem_metrics_do_not_vote_on_the_wall_median() {
        // Two honest wall metrics at 3x (machine speed) plus a mem key at
        // 1x: were the mem key in the median vote, the median would drop
        // to 1x and the wall metrics would read as 3x-normalized failures.
        let base = sections(&[(
            "engine_rounds",
            &[("a/b", 100.0), ("a/c", 40.0), ("mem/peak_rss_mb/x", 500.0)],
        )]);
        let cur = sections(&[(
            "engine_rounds",
            &[("a/b", 300.0), ("a/c", 120.0), ("mem/peak_rss_mb/x", 500.0)],
        )]);
        let r = check(&base, &cur, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn non_alloc_hot_path_metrics_are_not_gated() {
        // single_place wall times live in placement_hot_path but are not
        // under the alloc prefix; they may drift with runner noise.
        let base = sections(&[("placement_hot_path", &[("single_place/PAL/64", 100.0)])]);
        let cur = sections(&[("placement_hot_path", &[("single_place/PAL/64", 900.0)])]);
        assert!(check(&base, &cur, DEFAULT_TOLERANCE).passed());
    }
}
