//! Shared experiment plumbing: cluster/profile construction matching the
//! paper's methodology (Section IV) and [`PolicyKind`], the six placement
//! configurations of Section IV-A1, expressed as [`pal_sim::Campaign`]
//! policy specs.
//!
//! The sweep helpers here are thin conveniences over the simulator's
//! `Scenario`/`Campaign` API: [`run_policy`] runs one cell,
//! [`run_all_policies`] runs the full six-policy column for one trace, and
//! [`paper_campaign`] builds the raw `Campaign` for binaries that sweep
//! several scenarios at once.

use pal::{PalPlacement, PmFirstPlacement, PmTableCache};
use pal_cluster::{ClusterTopology, LocalityModel, VariabilityProfile};
use pal_gpumodel::{profiler, ClusterFlavor, GpuSpec, ProfiledApp, Workload};
use pal_sim::placement::{PackedPlacement, RandomPlacement};
use pal_sim::{Campaign, PlacementPolicy, PolicySpec, Scenario, SchedulingPolicy, SimResult};
use pal_trace::Trace;
use std::sync::Arc;

/// Default seed for profile synthesis — fixed so every figure binary sees
/// the same cluster.
pub const PROFILE_SEED: u64 = 0x70AC_C01D;

/// Default campaign seed for the policy sweeps (feeds the deterministic
/// per-cell seeds).
pub const CAMPAIGN_SEED: u64 = 0xD1CE;

/// Measured-cluster sizes the synthetic profiles are drawn from. Longhorn
/// had 448 V100s (8 nodes × 4 GPUs × 14 chassis in the GPU subsystem);
/// anything ≥ the largest simulated cluster works for
/// sample-without-repetition.
pub const LONGHORN_MEASURED_GPUS: usize = 448;

/// Profile the three Table III representatives on a modeled cluster.
pub fn profile_table3(
    spec: &GpuSpec,
    flavor: ClusterFlavor,
    n: usize,
    seed: u64,
) -> Vec<ProfiledApp> {
    let gpus = profiler::build_cluster_gpus(spec, flavor, n, seed);
    Workload::TABLE_III
        .iter()
        .map(|w| profiler::profile_cluster(&w.spec(), &gpus))
        .collect()
}

/// The Longhorn-derived simulation profile of Section IV-C: profile the
/// measured cluster, then sample `n_gpus` PM penalties per class without
/// repetition.
pub fn longhorn_profile(n_gpus: usize, seed: u64) -> VariabilityProfile {
    let profiled = profile_table3(
        &GpuSpec::v100(),
        ClusterFlavor::Longhorn,
        LONGHORN_MEASURED_GPUS,
        seed,
    );
    VariabilityProfile::sample_from_profiled(&profiled, n_gpus, seed ^ 0x5A5A)
}

/// The exact 64-GPU Frontera testbed profile of Section V-A (indexed by
/// GPU UUID — i.e., per-device, no sampling).
pub fn frontera_testbed_profile(seed: u64) -> VariabilityProfile {
    let gpus = profiler::build_cluster_gpus(
        &GpuSpec::quadro_rtx5000(),
        ClusterFlavor::FronteraTestbed,
        64,
        seed,
    );
    let apps: Vec<_> = Workload::TABLE_III.iter().map(|w| w.spec()).collect();
    VariabilityProfile::from_modeled_gpus(&apps, &gpus)
}

/// The six placement configurations of the evaluation (Section IV-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Random placement, sticky.
    RandomSticky,
    /// Random placement, non-sticky.
    RandomNonSticky,
    /// Packed non-sticky — the paper's *Gandiva* baseline.
    Gandiva,
    /// Packed sticky — the paper's *Tiresias* baseline (best baseline).
    Tiresias,
    /// PM-First (non-sticky, Section III-B).
    PmFirst,
    /// PAL (non-sticky, Section III-C).
    Pal,
}

impl PolicyKind {
    /// All six, in Figure 11's legend order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::RandomNonSticky,
        PolicyKind::RandomSticky,
        PolicyKind::Gandiva,
        PolicyKind::Tiresias,
        PolicyKind::PmFirst,
        PolicyKind::Pal,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RandomSticky => "Random-Sticky",
            PolicyKind::RandomNonSticky => "Random-Non-Sticky",
            PolicyKind::Gandiva => "Gandiva",
            PolicyKind::Tiresias => "Tiresias",
            PolicyKind::PmFirst => "PM-First",
            PolicyKind::Pal => "PAL",
        }
    }

    /// Whether this configuration runs sticky.
    pub fn sticky(self) -> bool {
        matches!(self, PolicyKind::RandomSticky | PolicyKind::Tiresias)
    }

    /// Instantiate the placement policy object, building any PM-score
    /// table from scratch. Prefer [`build_cached`](PolicyKind::build_cached)
    /// in sweeps.
    pub fn build(self, profile: &VariabilityProfile, seed: u64) -> Box<dyn PlacementPolicy + Send> {
        self.build_cached(&PmTableCache::new(), profile, seed)
    }

    /// Instantiate the placement policy object, sourcing any PM-score
    /// table from `cache` — PM-First and PAL built over the same profile
    /// (and the paper's default binning) share one table, so an N×M
    /// campaign performs O(distinct profiles) table builds instead of one
    /// per cell.
    pub fn build_cached(
        self,
        cache: &PmTableCache,
        profile: &VariabilityProfile,
        seed: u64,
    ) -> Box<dyn PlacementPolicy + Send> {
        match self {
            PolicyKind::RandomSticky | PolicyKind::RandomNonSticky => {
                Box::new(RandomPlacement::new(seed))
            }
            PolicyKind::Gandiva | PolicyKind::Tiresias => {
                Box::new(PackedPlacement::randomized(seed))
            }
            PolicyKind::PmFirst => Box::new(PmFirstPlacement::from_shared(
                cache.get_or_build_default(profile),
            )),
            PolicyKind::Pal => Box::new(PalPlacement::from_shared(
                cache.get_or_build_default(profile),
            )),
        }
    }

    /// This configuration as a [`Campaign`] policy column: the paper's
    /// label, the policy builder, and the sticky override. The column
    /// memoizes its own PM-score tables; to share one cache across
    /// several columns (as [`paper_policy_specs`] does), use
    /// [`spec_cached`](PolicyKind::spec_cached).
    pub fn spec(self) -> PolicySpec {
        self.spec_cached(Arc::new(PmTableCache::new()))
    }

    /// [`spec`](PolicyKind::spec) with an explicit (usually shared)
    /// PM-score table cache.
    pub fn spec_cached(self, cache: Arc<PmTableCache>) -> PolicySpec {
        PolicySpec::new(self.name(), move |profile, seed| {
            self.build_cached(&cache, profile, seed)
        })
        .sticky(self.sticky())
    }
}

/// All six placement configurations as [`Campaign`] policy columns, in
/// [`PolicyKind::ALL`] order, sharing one PM-score table cache: a whole
/// paper sweep builds each distinct profile's table exactly once.
pub fn paper_policy_specs() -> Vec<PolicySpec> {
    let cache = Arc::new(PmTableCache::new());
    PolicyKind::ALL
        .iter()
        .map(|k| k.spec_cached(Arc::clone(&cache)))
        .collect()
}

/// A campaign pre-loaded with the six paper policies (add scenarios with
/// [`Campaign::scenario`]).
pub fn paper_campaign() -> Campaign {
    Campaign::new()
        .seed(CAMPAIGN_SEED)
        .policies(paper_policy_specs())
}

/// Run one `(trace, policy)` simulation with the policy-appropriate sticky
/// mode, as a one-cell [`Campaign`].
///
/// Cell seeds are derived from `(CAMPAIGN_SEED, trace name, policy name)`,
/// so this reproduces the corresponding cell of [`run_all_policies`]
/// exactly — figure binaries mixing the two helpers report consistent
/// numbers for identical configurations.
pub fn run_policy<S>(
    trace: &Trace,
    topology: ClusterTopology,
    profile: &VariabilityProfile,
    locality: &LocalityModel,
    scheduler: S,
    kind: PolicyKind,
) -> SimResult
where
    S: SchedulingPolicy + Send + Sync + Clone + 'static,
{
    let tag = trace.name.clone();
    // One deep copy each into shared handles; every cell clones the Arc.
    let trace = Arc::new(trace.clone());
    let profile = Arc::new(profile.clone());
    let locality = Arc::new(locality.clone());
    let mut results = Campaign::new()
        .seed(CAMPAIGN_SEED)
        .scenario(tag, move || {
            Scenario::new(Arc::clone(&trace), topology)
                .profile(Arc::clone(&profile))
                .locality(Arc::clone(&locality))
                .scheduler(scheduler.clone())
        })
        .policy(kind.spec())
        .run()
        .expect("experiment scenario misconfigured");
    results.pop().expect("one cell ran").result
}

/// Run every policy of [`PolicyKind::ALL`] over one trace, in parallel,
/// as a one-scenario [`Campaign`].
pub fn run_all_policies<S>(
    trace: &Trace,
    topology: ClusterTopology,
    profile: &VariabilityProfile,
    locality: &LocalityModel,
    scheduler: S,
) -> Vec<(PolicyKind, SimResult)>
where
    S: SchedulingPolicy + Send + Sync + Clone + 'static,
{
    let tag = trace.name.clone();
    // One deep copy each into shared handles; every cell clones the Arc.
    let trace = Arc::new(trace.clone());
    let profile = Arc::new(profile.clone());
    let locality = Arc::new(locality.clone());
    let results = paper_campaign()
        .scenario(tag, move || {
            Scenario::new(Arc::clone(&trace), topology)
                .profile(Arc::clone(&profile))
                .locality(Arc::clone(&locality))
                .scheduler(scheduler.clone())
        })
        .run()
        .expect("experiment campaign misconfigured");
    PolicyKind::ALL
        .iter()
        .copied()
        .zip(results.into_iter().map(|cell| cell.result))
        .collect()
}

/// Seconds → hours, for printing in the paper's units.
pub fn hours(seconds: f64) -> f64 {
    seconds / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pal_sim::sched::Fifo;
    use pal_trace::{ModelCatalog, SiaPhillyConfig};

    #[test]
    fn run_policy_matches_run_all_policies_cell() {
        // Both helpers derive cell seeds from (CAMPAIGN_SEED, trace name,
        // policy name), so a figure binary mixing them must see identical
        // results for the same configuration.
        let catalog = ModelCatalog::table2(&GpuSpec::v100());
        let trace = SiaPhillyConfig {
            num_jobs: 20,
            ..Default::default()
        }
        .generate(1, &catalog);
        let topo = ClusterTopology::sia_64();
        let profile = longhorn_profile(64, PROFILE_SEED);
        let locality = LocalityModel::uniform(1.5);

        let all = run_all_policies(&trace, topo, &profile, &locality, Fifo);
        for kind in [PolicyKind::Tiresias, PolicyKind::RandomNonSticky] {
            let single = run_policy(&trace, topo, &profile, &locality, Fifo, kind);
            let cell = &all.iter().find(|(k, _)| *k == kind).expect("cell ran").1;
            assert!(
                single.same_outcome(cell),
                "run_policy and run_all_policies diverged for {}",
                kind.name()
            );
        }
    }
}
