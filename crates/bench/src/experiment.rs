//! Shared experiment plumbing: cluster/profile construction matching the
//! paper's methodology (Section IV) and a uniform runner over the six
//! placement configurations of Section IV-A1.

use pal::{PalPlacement, PmFirstPlacement};
use pal_cluster::{ClusterTopology, LocalityModel, VariabilityProfile};
use pal_gpumodel::{profiler, ClusterFlavor, GpuSpec, ProfiledApp, Workload};
use pal_sim::placement::{PackedPlacement, RandomPlacement};
use pal_sim::{PlacementPolicy, SchedulingPolicy, SimConfig, SimResult, Simulator};
use pal_trace::Trace;

/// Default seed for profile synthesis — fixed so every figure binary sees
/// the same cluster.
pub const PROFILE_SEED: u64 = 0x70AC_C01D;

/// Measured-cluster sizes the synthetic profiles are drawn from. Longhorn
/// had 448 V100s (8 nodes × 4 GPUs × 14 chassis in the GPU subsystem);
/// anything ≥ the largest simulated cluster works for
/// sample-without-repetition.
pub const LONGHORN_MEASURED_GPUS: usize = 448;

/// Profile the three Table III representatives on a modeled cluster.
pub fn profile_table3(spec: &GpuSpec, flavor: ClusterFlavor, n: usize, seed: u64) -> Vec<ProfiledApp> {
    let gpus = profiler::build_cluster_gpus(spec, flavor, n, seed);
    Workload::TABLE_III
        .iter()
        .map(|w| profiler::profile_cluster(&w.spec(), &gpus))
        .collect()
}

/// The Longhorn-derived simulation profile of Section IV-C: profile the
/// measured cluster, then sample `n_gpus` PM penalties per class without
/// repetition.
pub fn longhorn_profile(n_gpus: usize, seed: u64) -> VariabilityProfile {
    let profiled = profile_table3(
        &GpuSpec::v100(),
        ClusterFlavor::Longhorn,
        LONGHORN_MEASURED_GPUS,
        seed,
    );
    VariabilityProfile::sample_from_profiled(&profiled, n_gpus, seed ^ 0x5A5A)
}

/// The exact 64-GPU Frontera testbed profile of Section V-A (indexed by
/// GPU UUID — i.e., per-device, no sampling).
pub fn frontera_testbed_profile(seed: u64) -> VariabilityProfile {
    let gpus = profiler::build_cluster_gpus(
        &GpuSpec::quadro_rtx5000(),
        ClusterFlavor::FronteraTestbed,
        64,
        seed,
    );
    let apps: Vec<_> = Workload::TABLE_III.iter().map(|w| w.spec()).collect();
    VariabilityProfile::from_modeled_gpus(&apps, &gpus)
}

/// The six placement configurations of the evaluation (Section IV-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Random placement, sticky.
    RandomSticky,
    /// Random placement, non-sticky.
    RandomNonSticky,
    /// Packed non-sticky — the paper's *Gandiva* baseline.
    Gandiva,
    /// Packed sticky — the paper's *Tiresias* baseline (best baseline).
    Tiresias,
    /// PM-First (non-sticky, Section III-B).
    PmFirst,
    /// PAL (non-sticky, Section III-C).
    Pal,
}

impl PolicyKind {
    /// All six, in Figure 11's legend order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::RandomNonSticky,
        PolicyKind::RandomSticky,
        PolicyKind::Gandiva,
        PolicyKind::Tiresias,
        PolicyKind::PmFirst,
        PolicyKind::Pal,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RandomSticky => "Random-Sticky",
            PolicyKind::RandomNonSticky => "Random-Non-Sticky",
            PolicyKind::Gandiva => "Gandiva",
            PolicyKind::Tiresias => "Tiresias",
            PolicyKind::PmFirst => "PM-First",
            PolicyKind::Pal => "PAL",
        }
    }

    /// Whether this configuration runs sticky.
    pub fn sticky(self) -> bool {
        matches!(self, PolicyKind::RandomSticky | PolicyKind::Tiresias)
    }

    /// Instantiate the placement policy object.
    pub fn build(self, profile: &VariabilityProfile, seed: u64) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::RandomSticky | PolicyKind::RandomNonSticky => {
                Box::new(RandomPlacement::new(seed))
            }
            PolicyKind::Gandiva | PolicyKind::Tiresias => Box::new(PackedPlacement::randomized(seed)),
            PolicyKind::PmFirst => Box::new(PmFirstPlacement::new(profile)),
            PolicyKind::Pal => Box::new(PalPlacement::new(profile)),
        }
    }
}

/// Run one `(trace, policy)` simulation with the policy-appropriate sticky
/// mode.
pub fn run_policy(
    trace: &Trace,
    topology: ClusterTopology,
    profile: &VariabilityProfile,
    locality: &LocalityModel,
    scheduler: &dyn SchedulingPolicy,
    kind: PolicyKind,
) -> SimResult {
    let config = if kind.sticky() {
        SimConfig::sticky()
    } else {
        SimConfig::non_sticky()
    };
    let mut placement = kind.build(profile, 0xD1CE ^ trace.jobs.len() as u64);
    let mut result = Simulator::new(config).run(
        trace,
        topology,
        profile,
        locality,
        scheduler,
        placement.as_mut(),
    );
    // The engine reports "<policy>-<Sticky|NonSticky>"; use the paper's
    // labels instead.
    result.placement = kind.name().to_string();
    result
}

/// Run every policy of [`PolicyKind::ALL`] over one trace, in parallel.
pub fn run_all_policies(
    trace: &Trace,
    topology: ClusterTopology,
    profile: &VariabilityProfile,
    locality: &LocalityModel,
    scheduler: &(dyn SchedulingPolicy + Sync),
) -> Vec<(PolicyKind, SimResult)> {
    let mut out: Vec<(PolicyKind, SimResult)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = PolicyKind::ALL
            .iter()
            .map(|&kind| {
                s.spawn(move || {
                    (
                        kind,
                        run_policy(trace, topology, profile, locality, scheduler, kind),
                    )
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("policy run panicked"));
        }
    });
    out
}

/// Seconds → hours, for printing in the paper's units.
pub fn hours(seconds: f64) -> f64 {
    seconds / 3600.0
}
