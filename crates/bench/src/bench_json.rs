//! Machine-readable benchmark output: `BENCH_engine.json` at the
//! repository root, tracking the perf trajectory across PRs.
//!
//! The vendored criterion shim records every reported measurement
//! (`criterion::take_measurements`); benches with a custom `main` hand
//! them here and [`update`] merges them into the JSON file as one section
//! per bench binary, leaving other sections untouched:
//!
//! ```json
//! {
//!   "engine_rounds": { "engine_full_run/synergy_300jobs/low_4jph": 1.2e9 },
//!   "placement_hot_path": { "single_place/PAL/256": 85.0 }
//! }
//! ```
//!
//! The build environment has no `serde_json`, so this module parses and
//! emits exactly that two-level `string → string → number` shape itself —
//! sections and keys sorted, one key per line — which also keeps the
//! committed file diff-friendly.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Sections of the benchmark file: bench name → (label → mean ns/iter or
/// other scalar).
pub type BenchSections = BTreeMap<String, BTreeMap<String, f64>>;

/// Merge `entries` in as section `section` of the JSON file at `path`
/// (replacing that section, preserving the others) and rewrite the file.
/// A missing file starts empty; a *malformed* file is an error — silently
/// treating it as empty would discard every other bench's history, which
/// is exactly what the file exists to preserve.
pub fn update(path: &Path, section: &str, entries: &[(String, f64)]) -> io::Result<()> {
    let mut sections = match std::fs::read_to_string(path) {
        Ok(text) => parse(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} is not in bench_json's canonical shape; fix or delete it \
                     before re-running the bench",
                    path.display()
                ),
            )
        })?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => BenchSections::default(),
        Err(e) => return Err(e),
    };
    sections.insert(
        section.to_string(),
        entries.iter().cloned().collect::<BTreeMap<_, _>>(),
    );
    std::fs::write(path, render(&sections))
}

/// [`update`] against the workspace root's `BENCH_engine.json` (the file
/// CI's bench-smoke job refreshes).
pub fn update_workspace(section: &str, entries: &[(String, f64)]) -> io::Result<()> {
    update(&workspace_path(), section, entries)
}

/// The workspace root's `BENCH_engine.json`.
pub fn workspace_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Read and parse a bench file in the canonical two-level shape.
pub fn load(path: &Path) -> io::Result<BenchSections> {
    let text = std::fs::read_to_string(path)?;
    parse_text(&text).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not in bench_json's canonical shape", path.display()),
        )
    })
}

/// Parse bench-file text in the canonical two-level shape (e.g. a
/// committed baseline read out of `git show`); `None` when malformed.
pub fn parse_text(text: &str) -> Option<BenchSections> {
    parse(text)
}

/// Render the canonical form: sorted sections, sorted keys, one per line.
fn render(sections: &BenchSections) -> String {
    let mut out = String::from("{\n");
    for (si, (section, entries)) in sections.iter().enumerate() {
        out.push_str(&format!("  {:?}: {{\n", section));
        for (ki, (key, value)) in entries.iter().enumerate() {
            let comma = if ki + 1 < entries.len() { "," } else { "" };
            out.push_str(&format!("    {:?}: {}{}\n", key, fmt_num(*value), comma));
        }
        let comma = if si + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("  }}{}\n", comma));
    }
    out.push_str("}\n");
    out
}

/// Format a scalar so it round-trips through [`parse`] (always includes a
/// decimal point or exponent; JSON-compatible).
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Parse the canonical two-level shape. Returns `None` on anything
/// unexpected (callers fall back to an empty file).
fn parse(text: &str) -> Option<BenchSections> {
    let mut t = Tokens::new(text);
    let mut sections = BenchSections::new();
    t.expect('{')?;
    if t.peek()? == '}' {
        t.expect('}')?;
        return Some(sections);
    }
    loop {
        let section = t.string()?;
        t.expect(':')?;
        t.expect('{')?;
        let mut entries = BTreeMap::new();
        if t.peek()? == '}' {
            t.expect('}')?;
        } else {
            loop {
                let key = t.string()?;
                t.expect(':')?;
                let value = t.number()?;
                entries.insert(key, value);
                match t.peek()? {
                    ',' => t.expect(',')?,
                    _ => break,
                };
            }
            t.expect('}')?;
        }
        sections.insert(section, entries);
        match t.peek()? {
            ',' => t.expect(',')?,
            _ => break,
        };
    }
    t.expect('}')?;
    Some(sections)
}

/// Minimal whitespace-skipping cursor over the JSON text.
struct Tokens<'a> {
    rest: &'a str,
}

impl<'a> Tokens<'a> {
    fn new(text: &'a str) -> Self {
        Tokens { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest.chars().next()
    }

    fn expect(&mut self, c: char) -> Option<()> {
        self.skip_ws();
        self.rest = self.rest.strip_prefix(c)?;
        Some(())
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let end = self.rest.find('"')?;
        let (s, rest) = self.rest.split_at(end);
        // Labels are bench/group names: no escapes to handle.
        if s.contains('\\') {
            return None;
        }
        self.rest = &rest[1..];
        Some(s.to_string())
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(self.rest.len());
        let (s, rest) = self.rest.split_at(end);
        self.rest = rest;
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_creates_and_merges_sections() {
        let dir = std::env::temp_dir().join("pal_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);

        update(&path, "b", &[("x/1".into(), 10.0), ("x/2".into(), 2.5e6)]).unwrap();
        update(&path, "a", &[("y".into(), 1.0)]).unwrap();
        // Overwrite one section; the other survives.
        update(&path, "b", &[("x/1".into(), 11.0)]).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let sections = parse(&text).expect("canonical output parses");
        assert_eq!(sections.len(), 2);
        assert_eq!(sections["a"]["y"], 1.0);
        assert_eq!(sections["b"].len(), 1);
        assert_eq!(sections["b"]["x/1"], 11.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut sections = BenchSections::new();
        sections.insert(
            "s".into(),
            [("k".to_string(), 123.456), ("l".to_string(), 7.0)]
                .into_iter()
                .collect(),
        );
        sections.insert("empty".into(), BTreeMap::new());
        let text = render(&sections);
        assert_eq!(parse(&text).as_ref(), Some(&sections));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(parse("not json").is_none());
        assert!(parse("{\"a\": {").is_none());
        assert_eq!(parse("{}").map(|s| s.len()), Some(0));
    }

    #[test]
    fn update_refuses_to_clobber_a_malformed_file() {
        let dir = std::env::temp_dir().join("pal_bench_json_malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_bad.json");
        std::fs::write(&path, "<<<<<<< merge conflict").unwrap();
        let err = update(&path, "s", &[("k".into(), 1.0)]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The malformed content survives for the operator to inspect.
        assert!(std::fs::read_to_string(&path).unwrap().contains("merge"));
        std::fs::remove_file(&path).unwrap();
    }

    /// The committed repo-root BENCH_engine.json must stay parseable —
    /// this is what keeps the cross-PR perf trajectory readable (and what
    /// CI relies on: `cargo test` runs before the bench-smoke steps
    /// regenerate the file).
    #[test]
    fn committed_bench_file_parses() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
        let text = std::fs::read_to_string(&path).expect("BENCH_engine.json is committed");
        let sections = parse(&text).expect("committed BENCH_engine.json parses");
        for bench in [
            "engine_rounds",
            "placement_hot_path",
            "serving_latency",
            "observer_overhead",
        ] {
            assert!(
                sections.contains_key(bench),
                "BENCH_engine.json lost its {bench} section"
            );
        }
    }
}
