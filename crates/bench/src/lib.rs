//! # pal-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index). Each figure
//! has a binary under `src/bin/` that prints the figure's rows/series as
//! CSV on stdout; Criterion benches cover the placement-overhead
//! measurements of Figure 18.

#![warn(missing_docs)]

pub mod experiment;

pub use experiment::*;
