//! # pal-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index). Each figure
//! has a binary under `src/bin/` that prints the figure's rows/series as
//! CSV on stdout; Criterion benches cover the placement-overhead
//! measurements of Figure 18.
//!
//! The engine-perf benches (`engine_rounds`, `placement_hot_path`) also
//! merge their measurements into the repo-root `BENCH_engine.json` via
//! [`bench_json`], so the hot-path trajectory is tracked across PRs —
//! and [`gate`] (driven by the `bench_gate` binary) turns that tracking
//! into a CI failure when the freshly measured numbers regress past
//! tolerance against the committed baseline.

#![warn(missing_docs)]

pub mod bench_json;
pub mod experiment;
pub mod gate;
pub mod memory;

pub use experiment::*;
