//! Peak-memory measurement for the bench harness.
//!
//! The large-scale engine benches record peak resident set size alongside
//! wall time in `BENCH_engine.json` (`mem/...` keys), so data-layout
//! regressions — a hot-loop structure quietly growing, a scratch buffer
//! cloned per round — show up in the perf trajectory even when wall time
//! hides them. Measurement reads Linux's `VmHWM` high-water mark from
//! `/proc/self/status`; between phases the mark is reset through
//! `/proc/self/clear_refs`, which lets one process report a per-phase
//! peak. Both degrade gracefully (returning `None`/`false`) on
//! platforms or sandboxes without these files, in which case callers
//! skip the memory entries rather than recording zeros.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// where `/proc/self/status` is unavailable or unparsable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:   123456 kB`.
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// Reset the peak-RSS high-water mark to the current RSS (write `5` to
/// `/proc/self/clear_refs`), so the next [`peak_rss_bytes`] reads the
/// peak of the phase that follows. Returns whether the reset succeeded;
/// when it fails, subsequent readings are monotone process-lifetime
/// peaks (still recorded, just coarser).
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

/// Peak RSS in mebibytes, the unit the bench entries use.
pub fn peak_rss_mib() -> Option<f64> {
    peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_when_available() {
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 0);
        }
    }

    #[test]
    fn reset_then_read_still_parses() {
        // Whether or not the reset is permitted, a subsequent read must
        // stay well-formed.
        let _ = reset_peak_rss();
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 0);
        }
    }

    #[test]
    fn mib_conversion() {
        if let (Some(b), Some(m)) = (peak_rss_bytes(), peak_rss_mib()) {
            // Allow the peak to move between the two reads.
            assert!(m >= b as f64 / (1024.0 * 1024.0) * 0.5);
        }
    }
}
