//! GPU occupancy tracking: the scheduler's live view of which GPUs are free
//! (the "Cluster State Monitor" box of Blox's architecture, Figure 1).

use crate::ids::{GpuId, NodeId};
use crate::topology::ClusterTopology;
use crate::view::ClusterView;
use serde::{Deserialize, Serialize};

/// Occupancy state of every GPU in a cluster.
///
/// Free counts — total and per node — and the per-node free-GPU *lists*
/// (the [`ClusterView`]) are maintained incrementally on every
/// allocate/release, so neither the O(1)/O(nodes) count queries nor the
/// free-list reads placement policies issue on each decision ever rescan
/// the GPU bitmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    topology: ClusterTopology,
    in_use: Vec<bool>,
    free_total: usize,
    free_per_node: Vec<usize>,
    view: ClusterView,
}

impl ClusterState {
    /// All-free state for a topology.
    pub fn new(topology: ClusterTopology) -> Self {
        ClusterState {
            in_use: vec![false; topology.total_gpus()],
            free_total: topology.total_gpus(),
            free_per_node: vec![topology.gpus_per_node; topology.nodes],
            view: ClusterView::all_free(&topology),
            topology,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The incrementally maintained free-GPU view: per-node free lists in
    /// GPU-id order, kept up to date by every [`allocate`](Self::allocate)
    /// and [`release`](Self::release). This is what placement policies
    /// should read instead of materializing free lists per decision.
    pub fn view(&self) -> &ClusterView {
        &self.view
    }

    /// Whether a GPU is currently free.
    pub fn is_free(&self, gpu: GpuId) -> bool {
        !self.in_use[gpu.index()]
    }

    /// Number of free GPUs. O(1).
    pub fn free_count(&self) -> usize {
        self.free_total
    }

    /// Free-GPU count of every node, indexed by node id. O(1) (borrowed
    /// from the incrementally maintained counters).
    pub fn free_count_by_node(&self) -> &[usize] {
        &self.free_per_node
    }

    /// The free GPUs of one node, in GPU-id order. Allocates; prefer the
    /// borrowed [`ClusterView::node_free`] via [`view`](Self::view).
    pub fn node_free_gpus(&self, node: NodeId) -> Vec<GpuId> {
        self.view.node_free(node).iter().collect()
    }

    /// Number of busy GPUs.
    pub fn busy_count(&self) -> usize {
        self.topology.total_gpus() - self.free_count()
    }

    /// The free list, in GPU-id order.
    pub fn free_gpus(&self) -> Vec<GpuId> {
        self.in_use
            .iter()
            .enumerate()
            .filter(|&(_, &u)| !u)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Nodes that currently have at least `want` free GPUs.
    pub fn nodes_with_free(&self, want: usize) -> Vec<NodeId> {
        self.free_per_node
            .iter()
            .enumerate()
            .filter(|&(_, &free)| free >= want)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Mark GPUs busy. Panics if any is already in use or duplicated — a
    /// double-allocation is always a scheduler bug, never a recoverable
    /// condition.
    pub fn allocate(&mut self, gpus: &[GpuId]) {
        for &g in gpus {
            assert!(
                !self.in_use[g.index()],
                "double allocation of {g}: already in use"
            );
            let node = self.topology.node_of(g);
            self.in_use[g.index()] = true;
            self.free_total -= 1;
            self.free_per_node[node.index()] -= 1;
            self.view.on_allocate(node, g);
        }
    }

    /// Mark GPUs free. Panics if any was not in use.
    pub fn release(&mut self, gpus: &[GpuId]) {
        for &g in gpus {
            assert!(self.in_use[g.index()], "releasing free GPU {g}");
            let node = self.topology.node_of(g);
            self.in_use[g.index()] = false;
            self.free_total += 1;
            self.free_per_node[node.index()] += 1;
            self.view.on_release(node, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ClusterState {
        ClusterState::new(ClusterTopology::new(2, 4))
    }

    #[test]
    fn fresh_state_all_free() {
        let s = state();
        assert_eq!(s.free_count(), 8);
        assert_eq!(s.busy_count(), 0);
        assert_eq!(s.free_gpus().len(), 8);
    }

    #[test]
    fn allocate_release_roundtrip() {
        let mut s = state();
        let alloc = vec![GpuId(1), GpuId(5)];
        s.allocate(&alloc);
        assert_eq!(s.free_count(), 6);
        assert!(!s.is_free(GpuId(1)));
        assert!(!s.is_free(GpuId(5)));
        s.release(&alloc);
        assert_eq!(s.free_count(), 8);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_allocate_panics() {
        let mut s = state();
        s.allocate(&[GpuId(0)]);
        s.allocate(&[GpuId(0)]);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn duplicate_in_one_call_panics() {
        let mut s = state();
        s.allocate(&[GpuId(2), GpuId(2)]);
    }

    #[test]
    #[should_panic(expected = "releasing free GPU")]
    fn release_free_panics() {
        let mut s = state();
        s.release(&[GpuId(0)]);
    }

    #[test]
    fn free_by_node_respects_topology() {
        let mut s = state();
        s.allocate(&[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]); // node 0 full
        let view = s.view();
        assert!(view.node_free(NodeId(0)).is_empty());
        assert_eq!(view.node_free(NodeId(1)).len(), 4);
        assert_eq!(view.node_free(NodeId(1)).words(), &[0b1111]);
    }

    #[test]
    fn incremental_counts_track_bitmap() {
        let mut s = state();
        assert_eq!(s.free_count_by_node(), &[4, 4]);
        s.allocate(&[GpuId(0), GpuId(1), GpuId(5)]);
        assert_eq!(s.free_count(), 5);
        assert_eq!(s.free_count_by_node(), &[2, 3]);
        s.release(&[GpuId(1)]);
        assert_eq!(s.free_count(), 6);
        assert_eq!(s.free_count_by_node(), &[3, 3]);
        // Counts must agree with the incrementally maintained free lists
        // at all times.
        let from_view: Vec<usize> = s.view().per_node().map(|nf| nf.len()).collect();
        assert_eq!(s.free_count_by_node(), &from_view[..]);
    }

    #[test]
    fn node_free_gpus_in_id_order() {
        let mut s = state();
        s.allocate(&[GpuId(5)]);
        assert_eq!(
            s.node_free_gpus(NodeId(1)),
            vec![GpuId(4), GpuId(6), GpuId(7)]
        );
        assert_eq!(s.node_free_gpus(NodeId(0)).len(), 4);
    }

    #[test]
    fn nodes_with_free_thresholds() {
        let mut s = state();
        s.allocate(&[GpuId(0), GpuId(1), GpuId(2)]); // node 0 has 1 free
        assert_eq!(s.nodes_with_free(1).len(), 2);
        assert_eq!(s.nodes_with_free(2), vec![NodeId(1)]);
        assert_eq!(s.nodes_with_free(4), vec![NodeId(1)]);
        assert!(s.nodes_with_free(5).is_empty());
    }
}
