//! Variability-profile persistence: CSV with one row per GPU and one
//! column per class, so profiles measured once ("design time",
//! Section IV-C) can be archived and reloaded across experiments.
//!
//! ```csv
//! gpu,class_A,class_B,class_C
//! 0,1.0234,1.0107,0.9998
//! ```

use crate::ids::JobClass;
use crate::profile::VariabilityProfile;
use std::io::{BufRead, Write};

/// Errors from profile (de)serialization.
#[derive(Debug)]
pub enum ProfileIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse(usize, String),
}

impl std::fmt::Display for ProfileIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileIoError::Io(e) => write!(f, "profile I/O error: {e}"),
            ProfileIoError::Parse(line, msg) => {
                write!(f, "profile parse error on line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ProfileIoError {}

impl From<std::io::Error> for ProfileIoError {
    fn from(e: std::io::Error) -> Self {
        ProfileIoError::Io(e)
    }
}

/// Serialize a profile as CSV.
pub fn write_profile_csv<W: Write>(
    profile: &VariabilityProfile,
    mut out: W,
) -> Result<(), ProfileIoError> {
    write!(out, "gpu")?;
    for c in 0..profile.num_classes() {
        write!(out, ",class_{}", JobClass(c).label())?;
    }
    writeln!(out)?;
    for g in 0..profile.num_gpus() {
        write!(out, "{g}")?;
        for c in 0..profile.num_classes() {
            write!(
                out,
                ",{}",
                profile.score(JobClass(c), crate::ids::GpuId(g as u32))
            )?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Parse a profile from CSV produced by [`write_profile_csv`].
pub fn read_profile_csv<R: BufRead>(input: R) -> Result<VariabilityProfile, ProfileIoError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut num_classes: Option<usize> = None;
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("gpu") {
            num_classes = Some(line.split(',').count() - 1);
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let expected = num_classes
            .ok_or_else(|| ProfileIoError::Parse(lineno + 1, "missing header".to_string()))?;
        if fields.len() != expected + 1 {
            return Err(ProfileIoError::Parse(
                lineno + 1,
                format!("expected {} fields, got {}", expected + 1, fields.len()),
            ));
        }
        let scores: Result<Vec<f64>, _> = fields[1..]
            .iter()
            .map(|f| {
                f.parse::<f64>()
                    .map_err(|_| ProfileIoError::Parse(lineno + 1, format!("bad score `{f}`")))
            })
            .collect();
        rows.push(scores?);
    }
    if rows.is_empty() {
        return Err(ProfileIoError::Parse(0, "no GPU rows".to_string()));
    }
    // Transpose rows (per-GPU) into per-class vectors.
    let classes = rows[0].len();
    let mut scores = vec![Vec::with_capacity(rows.len()); classes];
    for row in &rows {
        for (c, &v) in row.iter().enumerate() {
            scores[c].push(v);
        }
    }
    Ok(VariabilityProfile::from_raw(scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> VariabilityProfile {
        VariabilityProfile::from_raw(vec![
            vec![1.0, 1.5, 0.9, 2.3],
            vec![1.0, 1.2, 0.95, 1.7],
            vec![1.0, 1.01, 0.99, 1.0],
        ])
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let mut buf = Vec::new();
        write_profile_csv(&p, &mut buf).unwrap();
        let parsed = read_profile_csv(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn header_names_classes() {
        let mut buf = Vec::new();
        write_profile_csv(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("gpu,class_A,class_B,class_C\n"));
    }

    #[test]
    fn rejects_ragged_rows() {
        let input = "gpu,class_A,class_B\n0,1.0,1.0\n1,1.0\n";
        let err = read_profile_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(matches!(err, ProfileIoError::Parse(3, _)), "{err}");
    }

    #[test]
    fn rejects_missing_header() {
        let input = "0,1.0,1.0\n";
        assert!(read_profile_csv(BufReader::new(input.as_bytes())).is_err());
    }

    #[test]
    fn rejects_empty() {
        let input = "gpu,class_A\n";
        assert!(read_profile_csv(BufReader::new(input.as_bytes())).is_err());
    }

    #[test]
    fn rejects_bad_number() {
        let input = "gpu,class_A\n0,abc\n";
        let err = read_profile_csv(BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("abc"));
    }
}
