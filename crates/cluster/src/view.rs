//! [`ClusterView`]: the long-lived, incrementally maintained free-GPU view
//! placement policies consume.
//!
//! The seed policies rebuilt cluster state per decision —
//! `free_gpus_by_node()` materialized a fresh `Vec<Vec<GpuId>>` on every
//! `place` call, the dominant cost of the paper's own overhead experiment
//! (Figure 18) once the engine round loop itself became allocation-free.
//! The view inverts that: [`ClusterState`](crate::ClusterState) keeps
//! per-node free lists up to date on every `allocate`/`release` (exactly
//! like its incremental free *counters*), and policies borrow them for the
//! lifetime of a simulation instead of re-deriving them per decision.
//!
//! The free lists are stored as **fixed-width bitsets**: every node owns
//! the same number of 64-bit words (`ceil(gpus_per_node / 64)`), bit `i`
//! of a node's span set exactly when local GPU `i` is free. Allocate and
//! release are single bit flips (the `Vec` representation paid an
//! O(gpus_per_node) shift per op), membership order is GPU-id ascending by
//! construction, and consumers that want raw speed can scan a node
//! word-at-a-time via [`NodeFree::words`] instead of walking ids.
//!
//! [`ClassOrders`] is the companion cache for score-driven policies: one
//! lazily built, per-class ordering of *all* GPUs by ascending score.
//! Selecting the best free GPUs then degenerates to walking the ordering
//! and skipping busy devices — no per-call sort, no per-call allocation.
//! Policies whose scores drift (online PM-score updates) invalidate the
//! affected class and the ordering is rebuilt on next use.

use crate::ids::{GpuId, NodeId};
use crate::topology::ClusterTopology;
use serde::{Deserialize, Serialize};

/// Per-node free-GPU bitsets, fixed-width (same word count per node),
/// maintained incrementally by [`ClusterState`](crate::ClusterState) on
/// every allocate/release.
///
/// Obtained via [`ClusterState::view`](crate::ClusterState::view); nodes
/// with no free GPUs are present as all-zero spans so indices align with
/// node ids. Iteration over a node ([`NodeFree`]) yields GPU ids
/// ascending — the exact order the earlier sorted-`Vec` representation
/// exposed, so policies are bit-for-bit indifferent to the layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterView {
    /// Free bits, node-major: node `n` owns
    /// `words[n * words_per_node .. (n + 1) * words_per_node]`.
    words: Vec<u64>,
    /// Words per node: `ceil(gpus_per_node / 64)`, identical for every
    /// node (the fixed width that makes node spans directly indexable).
    words_per_node: usize,
    gpus_per_node: usize,
    nodes: usize,
}

impl ClusterView {
    /// All-free view for a topology.
    pub(crate) fn all_free(topology: &ClusterTopology) -> Self {
        let gpn = topology.gpus_per_node;
        let wpn = gpn.div_ceil(64).max(1);
        let mut words = vec![0u64; topology.nodes * wpn];
        for n in 0..topology.nodes {
            for i in 0..gpn {
                words[n * wpn + i / 64] |= 1u64 << (i % 64);
            }
        }
        ClusterView {
            words,
            words_per_node: wpn,
            gpus_per_node: gpn,
            nodes: topology.nodes,
        }
    }

    /// Number of nodes in the view.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The free GPUs of one node, ascending by GPU id. O(1), borrowed:
    /// returns a [`NodeFree`] handle over the node's bitset span.
    pub fn node_free(&self, node: NodeId) -> NodeFree<'_> {
        let n = node.index();
        NodeFree {
            words: &self.words[n * self.words_per_node..(n + 1) * self.words_per_node],
            base: (n * self.gpus_per_node) as u32,
        }
    }

    /// Per-node free sets in node order (all-zero spans included so
    /// indices align with node ids).
    pub fn per_node(&self) -> impl Iterator<Item = NodeFree<'_>> {
        (0..self.nodes).map(|n| self.node_free(NodeId(n as u32)))
    }

    /// Every free GPU, ascending by GPU id (node-major happens to *be*
    /// id-ascending because nodes own contiguous id ranges).
    pub fn free_iter(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.per_node().flatten()
    }

    /// Clear `gpu`'s free bit. Panics if it was not set — the caller
    /// ([`ClusterState`](crate::ClusterState)) has already ruled out
    /// double allocation.
    pub(crate) fn on_allocate(&mut self, node: NodeId, gpu: GpuId) {
        let (wi, bit) = self.locate(node, gpu);
        assert!(self.words[wi] & bit != 0, "view missing free GPU");
        self.words[wi] &= !bit;
    }

    /// Set `gpu`'s free bit. Panics if it was already set.
    pub(crate) fn on_release(&mut self, node: NodeId, gpu: GpuId) {
        let (wi, bit) = self.locate(node, gpu);
        assert!(self.words[wi] & bit == 0, "view already holds released GPU");
        self.words[wi] |= bit;
    }

    /// Word index and bit mask of one GPU within its node's span.
    fn locate(&self, node: NodeId, gpu: GpuId) -> (usize, u64) {
        let local = gpu.index() - node.index() * self.gpus_per_node;
        debug_assert!(local < self.gpus_per_node, "GPU outside its node span");
        (
            node.index() * self.words_per_node + local / 64,
            1u64 << (local % 64),
        )
    }
}

/// One node's free-GPU set: a borrowed view over the node's bitset span.
///
/// Iterating yields free GPU ids ascending (word-at-a-time scan with
/// `trailing_zeros`, so a fully-busy 64-GPU span costs one load). Cheap to
/// copy — two words — and [`Copy`] so callers can pass it by value.
#[derive(Debug, Clone, Copy)]
pub struct NodeFree<'a> {
    words: &'a [u64],
    base: u32,
}

impl<'a> NodeFree<'a> {
    /// Number of free GPUs on the node (popcount over the span).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the node has no free GPUs.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Free GPU ids of the node, ascending.
    pub fn iter(&self) -> NodeFreeIter<'a> {
        NodeFreeIter {
            words: self.words,
            wi: 0,
            cur: self.words.first().copied().unwrap_or(0),
            base: self.base,
        }
    }

    /// The raw bitset words of the node's span (bit `i` of word `w` =
    /// local GPU `w * 64 + i` free), for consumers that scan
    /// word-at-a-time.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// GPU id of local bit 0 (the node's first GPU).
    pub fn base(&self) -> GpuId {
        GpuId(self.base)
    }
}

impl<'a> IntoIterator for NodeFree<'a> {
    type Item = GpuId;
    type IntoIter = NodeFreeIter<'a>;
    fn into_iter(self) -> NodeFreeIter<'a> {
        self.iter()
    }
}

/// Ascending-id iterator over one node's free GPUs.
#[derive(Debug, Clone)]
pub struct NodeFreeIter<'a> {
    words: &'a [u64],
    wi: usize,
    cur: u64,
    base: u32,
}

impl Iterator for NodeFreeIter<'_> {
    type Item = GpuId;
    fn next(&mut self) -> Option<GpuId> {
        while self.cur == 0 {
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.wi];
        }
        let bit = self.cur.trailing_zeros();
        self.cur &= self.cur - 1;
        Some(GpuId(self.base + (self.wi as u32) * 64 + bit))
    }
}

/// Lazily built per-class orderings of all GPUs by ascending score (ties
/// broken by GPU id, so every ordering is total and deterministic).
///
/// Score-driven placement policies (PM-First, PAL's spread arm) own one of
/// these next to their score table: [`ensure`](ClassOrders::ensure) builds
/// a class's ordering on first use, [`get`](ClassOrders::get) borrows it
/// allocation-free afterwards, and adaptive policies whose scores change
/// at runtime call [`invalidate_all`](ClassOrders::invalidate_all) (or
/// [`invalidate`](ClassOrders::invalidate) for one class) to trigger a
/// rebuild on next use.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassOrders {
    orders: Vec<Vec<GpuId>>,
}

impl ClassOrders {
    /// Empty cache for `num_classes` classes (orderings build on demand).
    pub fn new(num_classes: usize) -> Self {
        ClassOrders {
            orders: vec![Vec::new(); num_classes],
        }
    }

    /// Build `class`'s ordering if it is missing or invalidated: all
    /// `num_gpus` GPUs sorted ascending by `score`, ties by GPU id.
    /// Panics on NaN scores (a policy bug).
    pub fn ensure(&mut self, class: usize, num_gpus: usize, score: impl Fn(GpuId) -> f64) {
        let order = &mut self.orders[class];
        if !order.is_empty() {
            return;
        }
        order.extend((0..num_gpus).map(|i| GpuId(i as u32)));
        order.sort_by(|&a, &b| {
            score(a)
                .partial_cmp(&score(b))
                .expect("NaN GPU score")
                .then(a.cmp(&b))
        });
    }

    /// Borrow `class`'s ordering. Empty until [`ensure`](Self::ensure) has
    /// built it.
    pub fn get(&self, class: usize) -> &[GpuId] {
        &self.orders[class]
    }

    /// Drop one class's ordering (rebuilt on next `ensure`).
    pub fn invalidate(&mut self, class: usize) {
        self.orders[class].clear();
    }

    /// Drop every class's ordering (e.g. after an online re-bin changed
    /// the score table).
    pub fn invalidate_all(&mut self) {
        for order in &mut self.orders {
            order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ClusterState;

    fn state() -> ClusterState {
        ClusterState::new(ClusterTopology::new(2, 4))
    }

    fn free_vec(state: &ClusterState, node: u32) -> Vec<GpuId> {
        state.view().node_free(NodeId(node)).iter().collect()
    }

    #[test]
    fn fresh_view_lists_every_gpu_in_order() {
        let s = state();
        assert_eq!(s.view().nodes(), 2);
        assert_eq!(
            free_vec(&s, 1),
            vec![GpuId(4), GpuId(5), GpuId(6), GpuId(7)]
        );
        let all: Vec<GpuId> = s.view().free_iter().collect();
        assert_eq!(all, s.free_gpus());
    }

    #[test]
    fn view_tracks_allocate_and_release_incrementally() {
        let mut s = state();
        s.allocate(&[GpuId(1), GpuId(5), GpuId(6)]);
        assert_eq!(free_vec(&s, 0), vec![GpuId(0), GpuId(2), GpuId(3)]);
        assert_eq!(free_vec(&s, 1), vec![GpuId(4), GpuId(7)]);
        s.release(&[GpuId(5)]);
        assert_eq!(free_vec(&s, 1), vec![GpuId(4), GpuId(5), GpuId(7)]);
        // Release order must not matter: bit order is id order.
        s.allocate(&[GpuId(4), GpuId(7)]);
        s.release(&[GpuId(7)]);
        s.release(&[GpuId(4)]);
        assert_eq!(free_vec(&s, 1), vec![GpuId(4), GpuId(5), GpuId(7)]);
    }

    #[test]
    fn per_node_aligns_with_node_ids() {
        let mut s = state();
        s.allocate(&[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]); // node 0 full
        let lens: Vec<usize> = s.view().per_node().map(|nf| nf.len()).collect();
        assert_eq!(lens, vec![0, 4]);
        assert!(s.view().node_free(NodeId(0)).is_empty());
    }

    #[test]
    fn wide_nodes_span_multiple_words() {
        // 130 GPUs per node forces a 3-word span; the iterator must cross
        // word boundaries in id order.
        let topo = ClusterTopology::new(2, 130);
        let mut s = ClusterState::new(topo);
        s.allocate(&[GpuId(0), GpuId(63), GpuId(64), GpuId(129), GpuId(130)]);
        let free0: Vec<GpuId> = s.view().node_free(NodeId(0)).iter().collect();
        assert_eq!(free0.len(), 130 - 4);
        assert_eq!(free0[0], GpuId(1));
        assert!(free0.contains(&GpuId(65)));
        assert!(!free0.contains(&GpuId(129)));
        let free1: Vec<GpuId> = s.view().node_free(NodeId(1)).iter().collect();
        assert_eq!(free1[0], GpuId(131));
        assert_eq!(s.view().node_free(NodeId(1)).base(), GpuId(130));
    }

    #[test]
    fn node_words_expose_raw_bits() {
        let mut s = state();
        s.allocate(&[GpuId(5)]);
        let nf = s.view().node_free(NodeId(1));
        // Node 1's span: local bits 0..4 for GPUs 4..8, bit 1 (GPU 5) clear.
        assert_eq!(nf.words(), &[0b1101]);
    }

    #[test]
    fn class_orders_sort_by_score_then_id() {
        let scores = [1.5, 0.9, 1.5, 0.7];
        let mut orders = ClassOrders::new(1);
        orders.ensure(0, 4, |g| scores[g.index()]);
        assert_eq!(
            orders.get(0),
            &[GpuId(3), GpuId(1), GpuId(0), GpuId(2)],
            "ascending score, ties by id"
        );
    }

    #[test]
    fn class_orders_rebuild_after_invalidation() {
        let mut orders = ClassOrders::new(2);
        orders.ensure(0, 3, |g| g.index() as f64);
        assert_eq!(orders.get(0), &[GpuId(0), GpuId(1), GpuId(2)]);
        // ensure() with new scores is a no-op until invalidated…
        orders.ensure(0, 3, |g| -(g.index() as f64));
        assert_eq!(orders.get(0), &[GpuId(0), GpuId(1), GpuId(2)]);
        // …and rebuilds afterwards.
        orders.invalidate(0);
        orders.ensure(0, 3, |g| -(g.index() as f64));
        assert_eq!(orders.get(0), &[GpuId(2), GpuId(1), GpuId(0)]);
        // Untouched classes stay lazily empty.
        assert!(orders.get(1).is_empty());
        orders.invalidate_all();
        assert!(orders.get(0).is_empty());
    }
}
