//! [`ClusterView`]: the long-lived, incrementally maintained free-GPU view
//! placement policies consume.
//!
//! The seed policies rebuilt cluster state per decision —
//! `free_gpus_by_node()` materialized a fresh `Vec<Vec<GpuId>>` on every
//! `place` call, the dominant cost of the paper's own overhead experiment
//! (Figure 18) once the engine round loop itself became allocation-free.
//! The view inverts that: [`ClusterState`](crate::ClusterState) keeps
//! per-node free lists up to date on every `allocate`/`release` (exactly
//! like its incremental free *counters*), and policies borrow them for the
//! lifetime of a simulation instead of re-deriving them per decision.
//!
//! [`ClassOrders`] is the companion cache for score-driven policies: one
//! lazily built, per-class ordering of *all* GPUs by ascending score.
//! Selecting the best free GPUs then degenerates to walking the ordering
//! and skipping busy devices — no per-call sort, no per-call allocation.
//! Policies whose scores drift (online PM-score updates) invalidate the
//! affected class and the ordering is rebuilt on next use.

use crate::ids::{GpuId, NodeId};
use crate::topology::ClusterTopology;
use serde::{Deserialize, Serialize};

/// Per-node free-GPU lists, each sorted ascending by GPU id, maintained
/// incrementally by [`ClusterState`](crate::ClusterState) on every
/// allocate/release.
///
/// Obtained via [`ClusterState::view`](crate::ClusterState::view); nodes
/// with no free GPUs are present as empty slices so indices align with
/// node ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterView {
    free_by_node: Vec<Vec<GpuId>>,
}

impl ClusterView {
    /// All-free view for a topology.
    pub(crate) fn all_free(topology: &ClusterTopology) -> Self {
        ClusterView {
            free_by_node: (0..topology.nodes)
                .map(|n| {
                    let base = n * topology.gpus_per_node;
                    (base..base + topology.gpus_per_node)
                        .map(|i| GpuId(i as u32))
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of nodes in the view.
    pub fn nodes(&self) -> usize {
        self.free_by_node.len()
    }

    /// The free GPUs of one node, ascending by GPU id. O(1), borrowed.
    pub fn node_free(&self, node: NodeId) -> &[GpuId] {
        &self.free_by_node[node.index()]
    }

    /// Per-node free lists in node order (empty slices included so indices
    /// align with node ids).
    pub fn per_node(&self) -> impl Iterator<Item = &[GpuId]> {
        self.free_by_node.iter().map(Vec::as_slice)
    }

    /// Every free GPU, ascending by GPU id (node-major happens to *be*
    /// id-ascending because nodes own contiguous id ranges).
    pub fn free_iter(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.free_by_node.iter().flatten().copied()
    }

    /// Remove `gpu` from its node's free list. Panics if absent — the
    /// caller ([`ClusterState`](crate::ClusterState)) has already ruled
    /// out double allocation.
    pub(crate) fn on_allocate(&mut self, node: NodeId, gpu: GpuId) {
        let list = &mut self.free_by_node[node.index()];
        let pos = list.binary_search(&gpu).expect("view missing free GPU");
        list.remove(pos);
    }

    /// Insert `gpu` back into its node's free list, keeping id order.
    pub(crate) fn on_release(&mut self, node: NodeId, gpu: GpuId) {
        let list = &mut self.free_by_node[node.index()];
        let pos = list
            .binary_search(&gpu)
            .expect_err("view already holds released GPU");
        list.insert(pos, gpu);
    }
}

/// Lazily built per-class orderings of all GPUs by ascending score (ties
/// broken by GPU id, so every ordering is total and deterministic).
///
/// Score-driven placement policies (PM-First, PAL's spread arm) own one of
/// these next to their score table: [`ensure`](ClassOrders::ensure) builds
/// a class's ordering on first use, [`get`](ClassOrders::get) borrows it
/// allocation-free afterwards, and adaptive policies whose scores change
/// at runtime call [`invalidate_all`](ClassOrders::invalidate_all) (or
/// [`invalidate`](ClassOrders::invalidate) for one class) to trigger a
/// rebuild on next use.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassOrders {
    orders: Vec<Vec<GpuId>>,
}

impl ClassOrders {
    /// Empty cache for `num_classes` classes (orderings build on demand).
    pub fn new(num_classes: usize) -> Self {
        ClassOrders {
            orders: vec![Vec::new(); num_classes],
        }
    }

    /// Build `class`'s ordering if it is missing or invalidated: all
    /// `num_gpus` GPUs sorted ascending by `score`, ties by GPU id.
    /// Panics on NaN scores (a policy bug).
    pub fn ensure(&mut self, class: usize, num_gpus: usize, score: impl Fn(GpuId) -> f64) {
        let order = &mut self.orders[class];
        if !order.is_empty() {
            return;
        }
        order.extend((0..num_gpus).map(|i| GpuId(i as u32)));
        order.sort_by(|&a, &b| {
            score(a)
                .partial_cmp(&score(b))
                .expect("NaN GPU score")
                .then(a.cmp(&b))
        });
    }

    /// Borrow `class`'s ordering. Empty until [`ensure`](Self::ensure) has
    /// built it.
    pub fn get(&self, class: usize) -> &[GpuId] {
        &self.orders[class]
    }

    /// Drop one class's ordering (rebuilt on next `ensure`).
    pub fn invalidate(&mut self, class: usize) {
        self.orders[class].clear();
    }

    /// Drop every class's ordering (e.g. after an online re-bin changed
    /// the score table).
    pub fn invalidate_all(&mut self) {
        for order in &mut self.orders {
            order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ClusterState;

    fn state() -> ClusterState {
        ClusterState::new(ClusterTopology::new(2, 4))
    }

    #[test]
    fn fresh_view_lists_every_gpu_in_order() {
        let s = state();
        assert_eq!(s.view().nodes(), 2);
        assert_eq!(
            s.view().node_free(NodeId(1)),
            &[GpuId(4), GpuId(5), GpuId(6), GpuId(7)]
        );
        let all: Vec<GpuId> = s.view().free_iter().collect();
        assert_eq!(all, s.free_gpus());
    }

    #[test]
    fn view_tracks_allocate_and_release_incrementally() {
        let mut s = state();
        s.allocate(&[GpuId(1), GpuId(5), GpuId(6)]);
        assert_eq!(
            s.view().node_free(NodeId(0)),
            &[GpuId(0), GpuId(2), GpuId(3)]
        );
        assert_eq!(s.view().node_free(NodeId(1)), &[GpuId(4), GpuId(7)]);
        s.release(&[GpuId(5)]);
        assert_eq!(
            s.view().node_free(NodeId(1)),
            &[GpuId(4), GpuId(5), GpuId(7)]
        );
        // Release order must not matter: lists stay id-sorted.
        s.allocate(&[GpuId(4), GpuId(7)]);
        s.release(&[GpuId(7)]);
        s.release(&[GpuId(4)]);
        assert_eq!(
            s.view().node_free(NodeId(1)),
            &[GpuId(4), GpuId(5), GpuId(7)]
        );
    }

    #[test]
    fn per_node_aligns_with_node_ids() {
        let mut s = state();
        s.allocate(&[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]); // node 0 full
        let lens: Vec<usize> = s.view().per_node().map(<[GpuId]>::len).collect();
        assert_eq!(lens, vec![0, 4]);
    }

    #[test]
    fn class_orders_sort_by_score_then_id() {
        let scores = [1.5, 0.9, 1.5, 0.7];
        let mut orders = ClassOrders::new(1);
        orders.ensure(0, 4, |g| scores[g.index()]);
        assert_eq!(
            orders.get(0),
            &[GpuId(3), GpuId(1), GpuId(0), GpuId(2)],
            "ascending score, ties by id"
        );
    }

    #[test]
    fn class_orders_rebuild_after_invalidation() {
        let mut orders = ClassOrders::new(2);
        orders.ensure(0, 3, |g| g.index() as f64);
        assert_eq!(orders.get(0), &[GpuId(0), GpuId(1), GpuId(2)]);
        // ensure() with new scores is a no-op until invalidated…
        orders.ensure(0, 3, |g| -(g.index() as f64));
        assert_eq!(orders.get(0), &[GpuId(0), GpuId(1), GpuId(2)]);
        // …and rebuilds afterwards.
        orders.invalidate(0);
        orders.ensure(0, 3, |g| -(g.index() as f64));
        assert_eq!(orders.get(0), &[GpuId(2), GpuId(1), GpuId(0)]);
        // Untouched classes stay lazily empty.
        assert!(orders.get(1).is_empty());
        orders.invalidate_all();
        assert!(orders.get(0).is_empty());
    }
}
