//! Typed identifiers for GPUs, nodes, and application classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a GPU within a cluster (dense, `0..total_gpus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId(pub u32);

impl GpuId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Index of a node within a cluster (dense, `0..nodes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// An application variability class, ordered by sensitivity: class 0 ("A")
/// is the most variability-sensitive (compute-bound), the last class the
/// least (memory-bound). The paper uses three classes A, B, C but the design
/// supports any K (Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobClass(pub usize);

impl JobClass {
    /// Class A — most variability-sensitive.
    pub const A: JobClass = JobClass(0);
    /// Class B.
    pub const B: JobClass = JobClass(1);
    /// Class C — least variability-sensitive.
    pub const C: JobClass = JobClass(2);

    /// Letter label ("A", "B", …, falling back to `class{n}` past "Z").
    pub fn label(self) -> String {
        if self.0 < 26 {
            char::from(b'A' + self.0 as u8).to_string()
        } else {
            format!("class{}", self.0)
        }
    }
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels() {
        assert_eq!(JobClass::A.label(), "A");
        assert_eq!(JobClass::B.label(), "B");
        assert_eq!(JobClass::C.label(), "C");
        assert_eq!(JobClass(25).label(), "Z");
        assert_eq!(JobClass(26).label(), "class26");
    }

    #[test]
    fn class_ordering_matches_sensitivity() {
        assert!(JobClass::A < JobClass::B);
        assert!(JobClass::B < JobClass::C);
    }

    #[test]
    fn display_impls() {
        assert_eq!(GpuId(3).to_string(), "gpu3");
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(JobClass::A.to_string(), "A");
    }

    #[test]
    fn gpu_index_roundtrip() {
        assert_eq!(GpuId(17).index(), 17);
        assert_eq!(NodeId(4).index(), 4);
    }
}
