//! Per-class, per-GPU variability profiles — the PM penalties of
//! Section IV-C.
//!
//! A profile stores, for each application class, every GPU's iteration time
//! normalized to the cluster median (1.0 = median GPU, 1.5 = 50 % slower).
//! The paper builds these either by measuring every GPU directly (the
//! 64-GPU testbed, indexed by GPU UUID) or, for simulations of an N-GPU
//! cluster, by "discretely, randomly sampling this profiling data without
//! repetition".

use crate::ids::{GpuId, JobClass};
use pal_gpumodel::{profile_cluster, AppSpec, ModeledGpu, ProfiledApp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Variability profile of a cluster: `scores[class][gpu]` is the normalized
/// iteration time of class `class`'s representative app on GPU `gpu`.
///
/// Profiles are a static, design-time artifact (Section IV-C): nothing in
/// the simulator mutates one. Sweeps should share a profile across
/// scenarios via `Arc<VariabilityProfile>` (the `pal_sim::Scenario`
/// setters accept `impl Into<Arc<T>>`), and derived per-profile artifacts
/// — notably the `pal` crate's PM-score tables — are memoizable by
/// content (see `pal::PmTableCache`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityProfile {
    scores: Vec<Vec<f64>>,
}

impl VariabilityProfile {
    /// Build from raw per-class score vectors. Panics if empty or ragged.
    pub fn from_raw(scores: Vec<Vec<f64>>) -> Self {
        assert!(!scores.is_empty(), "profile needs at least one class");
        let n = scores[0].len();
        assert!(n > 0, "profile needs at least one GPU");
        assert!(
            scores.iter().all(|c| c.len() == n),
            "per-class score vectors must have equal length"
        );
        assert!(
            scores.iter().flatten().all(|&s| s > 0.0 && s.is_finite()),
            "scores must be positive and finite"
        );
        VariabilityProfile { scores }
    }

    /// Exact profile of a modeled cluster: profile each class representative
    /// on every GPU (the testbed path, Section IV-C's "index into the
    /// variability profile using GPU UUID").
    pub fn from_modeled_gpus(class_apps: &[AppSpec], gpus: &[ModeledGpu]) -> Self {
        let scores = class_apps
            .iter()
            .map(|app| profile_cluster(app, gpus).normalized)
            .collect();
        VariabilityProfile::from_raw(scores)
    }

    /// Simulation-cluster construction: sample `n` PM penalties per class
    /// from measured profiles *without repetition* (Section IV-C). The same
    /// GPU permutation is used across classes so that one physically slow
    /// device is slow for every class it affects — per-GPU identity is
    /// preserved, as in the real measurement.
    ///
    /// Panics if any profile has fewer than `n` entries.
    pub fn sample_from_profiled(profiled: &[ProfiledApp], n: usize, seed: u64) -> Self {
        assert!(!profiled.is_empty(), "need at least one class profile");
        for p in profiled {
            assert!(
                p.normalized.len() >= n,
                "profile {} has {} entries, need {n} (sampling is without repetition)",
                p.app,
                p.normalized.len()
            );
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..profiled[0].normalized.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(n);
        let scores = profiled
            .iter()
            .map(|p| indices.iter().map(|&i| p.normalized[i]).collect())
            .collect();
        VariabilityProfile::from_raw(scores)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.scores.len()
    }

    /// Number of GPUs; 0 for a class-less profile (unreachable via
    /// [`from_raw`](VariabilityProfile::from_raw), which demands ≥1 class,
    /// but constructible through deserialization) instead of a panic.
    pub fn num_gpus(&self) -> usize {
        self.scores.first().map_or(0, |c| c.len())
    }

    /// Normalized iteration time (PM penalty) of `class` on `gpu`.
    pub fn score(&self, class: JobClass, gpu: GpuId) -> f64 {
        self.scores[class.0][gpu.index()]
    }

    /// All scores of one class, indexed by GPU.
    pub fn class_scores(&self, class: JobClass) -> &[f64] {
        &self.scores[class.0]
    }

    /// A copy with the scores of `gpus` for `class` multiplied by `factor`
    /// — models stale profiles (Section V-A found node 0's profiled class-A
    /// scores ~8× lower than the penalties jobs actually experienced).
    pub fn perturbed(&self, class: JobClass, gpus: &[GpuId], factor: f64) -> Self {
        assert!(factor > 0.0, "perturbation factor must be positive");
        let mut scores = self.scores.clone();
        for &g in gpus {
            scores[class.0][g.index()] *= factor;
        }
        VariabilityProfile { scores }
    }

    /// Geomean variability (`geomean(score) - 1`) of one class, the paper's
    /// headline spread metric.
    pub fn geomean_variability(&self, class: JobClass) -> f64 {
        pal_stats::geomean(&self.scores[class.0]).expect("positive scores") - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pal_gpumodel::{ClusterFlavor, GpuSpec, Workload};

    fn modeled(n: usize) -> Vec<ModeledGpu> {
        pal_gpumodel::profiler::build_cluster_gpus(&GpuSpec::v100(), ClusterFlavor::Longhorn, n, 7)
    }

    fn class_apps() -> Vec<AppSpec> {
        Workload::TABLE_III.iter().map(|w| w.spec()).collect()
    }

    #[test]
    fn from_modeled_has_three_classes() {
        let p = VariabilityProfile::from_modeled_gpus(&class_apps(), &modeled(32));
        assert_eq!(p.num_classes(), 3);
        assert_eq!(p.num_gpus(), 32);
    }

    #[test]
    fn class_a_more_variable_than_class_c() {
        let p = VariabilityProfile::from_modeled_gpus(&class_apps(), &modeled(256));
        assert!(p.geomean_variability(JobClass::A) > p.geomean_variability(JobClass::C));
        assert!(p.geomean_variability(JobClass::C) < 0.03);
    }

    #[test]
    fn sampling_without_repetition_preserves_values() {
        let gpus = modeled(128);
        let profiled: Vec<ProfiledApp> = class_apps()
            .iter()
            .map(|a| profile_cluster(a, &gpus))
            .collect();
        let p = VariabilityProfile::sample_from_profiled(&profiled, 64, 3);
        assert_eq!(p.num_gpus(), 64);
        // Every sampled class-A score exists in the source profile.
        for g in 0..64 {
            let s = p.score(JobClass::A, GpuId(g));
            assert!(profiled[0]
                .normalized
                .iter()
                .any(|&v| (v - s).abs() < 1e-15));
        }
    }

    #[test]
    fn sampling_uses_same_permutation_across_classes() {
        let gpus = modeled(64);
        let profiled: Vec<ProfiledApp> = class_apps()
            .iter()
            .map(|a| profile_cluster(a, &gpus))
            .collect();
        let p = VariabilityProfile::sample_from_profiled(&profiled, 32, 9);
        // For each sampled slot, the (classA, classB, classC) triple must
        // correspond to one source GPU index.
        for g in 0..32 {
            let triple = (
                p.score(JobClass::A, GpuId(g)),
                p.score(JobClass::B, GpuId(g)),
                p.score(JobClass::C, GpuId(g)),
            );
            let found = (0..64).any(|i| {
                (profiled[0].normalized[i] - triple.0).abs() < 1e-15
                    && (profiled[1].normalized[i] - triple.1).abs() < 1e-15
                    && (profiled[2].normalized[i] - triple.2).abs() < 1e-15
            });
            assert!(found, "slot {g} not traceable to one source GPU");
        }
    }

    #[test]
    #[should_panic(expected = "without repetition")]
    fn oversampling_panics() {
        let gpus = modeled(16);
        let profiled: Vec<ProfiledApp> = class_apps()
            .iter()
            .map(|a| profile_cluster(a, &gpus))
            .collect();
        VariabilityProfile::sample_from_profiled(&profiled, 32, 0);
    }

    #[test]
    fn perturbed_scales_only_targets() {
        let p = VariabilityProfile::from_raw(vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]]);
        let q = p.perturbed(JobClass::A, &[GpuId(1)], 8.0);
        assert_eq!(q.score(JobClass::A, GpuId(1)), 8.0);
        assert_eq!(q.score(JobClass::A, GpuId(0)), 1.0);
        assert_eq!(q.score(JobClass::B, GpuId(1)), 1.0);
    }

    #[test]
    fn class_less_profile_reports_zero_gpus_without_panicking() {
        // Regression: `num_gpus` indexed `scores[0]`; a deserialized
        // empty profile (from_raw forbids one) panicked instead of
        // reporting 0.
        let p = VariabilityProfile { scores: Vec::new() };
        assert_eq!(p.num_classes(), 0);
        assert_eq!(p.num_gpus(), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_raw_panics() {
        VariabilityProfile::from_raw(vec![vec![1.0, 1.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nonpositive_score_panics() {
        VariabilityProfile::from_raw(vec![vec![1.0, 0.0]]);
    }

    #[test]
    fn deterministic_sampling() {
        let gpus = modeled(64);
        let profiled: Vec<ProfiledApp> = class_apps()
            .iter()
            .map(|a| profile_cluster(a, &gpus))
            .collect();
        let a = VariabilityProfile::sample_from_profiled(&profiled, 32, 5);
        let b = VariabilityProfile::sample_from_profiled(&profiled, 32, 5);
        assert_eq!(a, b);
    }
}
