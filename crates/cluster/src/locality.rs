//! The two-level locality cost model of Section III-C.1.
//!
//! A multi-GPU job pays `L_across` on its iteration time when its allocation
//! spills across nodes and `L_within = 1.0` when fully packed. The paper
//! initially estimated `L_across ≈ 1.7` on Frontera from 4-GPU vs 8-GPU
//! ResNet-50 runs, later refined to per-model penalties; both forms are
//! supported here.

use crate::ids::GpuId;
use crate::topology::ClusterTopology;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Locality penalty model: a default inter-node penalty plus optional
/// per-model overrides (Section IV-D measured model-dependent penalties on
/// the physical cluster).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityModel {
    /// Penalty multiplier for allocations that stay within one node.
    /// Always 1.0 in the paper's model; kept explicit for clarity.
    pub l_within: f64,
    /// Default penalty multiplier for allocations spanning nodes.
    pub l_across: f64,
    /// Per-model overrides of `l_across`, keyed by model name.
    pub per_model: HashMap<String, f64>,
}

impl LocalityModel {
    /// Uniform model with the given inter-node penalty.
    pub fn uniform(l_across: f64) -> Self {
        assert!(l_across >= 1.0, "locality penalty must be >= 1.0");
        LocalityModel {
            l_within: 1.0,
            l_across,
            per_model: HashMap::new(),
        }
    }

    /// The paper's initial Frontera estimate (used in Synergy simulations).
    pub fn frontera_estimate() -> Self {
        LocalityModel::uniform(1.7)
    }

    /// Per-model penalties estimated from the paper's physical experiments
    /// ("inter-node communication costs are not as high on Frontera, and are
    /// also model-dependent", Section IV-D). Communication-heavy models pay
    /// more; PointNet's small point-cloud gradients pay the least.
    pub fn frontera_per_model() -> Self {
        let mut m = LocalityModel::uniform(1.3);
        for (model, pen) in [
            ("vgg19", 1.45),
            ("dcgan", 1.25),
            ("bert", 1.30),
            ("gpt2", 1.35),
            ("resnet50", 1.20),
            ("pointnet", 1.10),
        ] {
            m.per_model.insert(model.to_string(), pen);
        }
        m
    }

    /// Set a per-model override.
    pub fn with_model_penalty(mut self, model: &str, l_across: f64) -> Self {
        assert!(l_across >= 1.0, "locality penalty must be >= 1.0");
        self.per_model.insert(model.to_string(), l_across);
        self
    }

    /// The inter-node penalty that applies to `model` (falls back to the
    /// default when no override exists).
    pub fn l_across_for(&self, model: &str) -> f64 {
        self.per_model.get(model).copied().unwrap_or(self.l_across)
    }

    /// Penalty multiplier for a concrete allocation of `model` on `topo`:
    /// `l_within` if packed in one node (or a single/empty allocation),
    /// `l_across_for(model)` otherwise.
    pub fn penalty(&self, topo: &ClusterTopology, model: &str, gpus: &[GpuId]) -> f64 {
        if topo.spans_nodes(gpus) {
            self.l_across_for(model)
        } else {
            self.l_within
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_allocation_pays_nothing() {
        let t = ClusterTopology::new(2, 4);
        let m = LocalityModel::uniform(1.5);
        assert_eq!(m.penalty(&t, "resnet50", &[GpuId(0), GpuId(1)]), 1.0);
        assert_eq!(m.penalty(&t, "resnet50", &[GpuId(2)]), 1.0);
    }

    #[test]
    fn spread_allocation_pays_l_across() {
        let t = ClusterTopology::new(2, 4);
        let m = LocalityModel::uniform(1.5);
        assert_eq!(m.penalty(&t, "resnet50", &[GpuId(0), GpuId(4)]), 1.5);
    }

    #[test]
    fn per_model_override_wins() {
        let t = ClusterTopology::new(2, 4);
        let m = LocalityModel::uniform(1.5).with_model_penalty("bert", 1.2);
        assert_eq!(m.penalty(&t, "bert", &[GpuId(0), GpuId(4)]), 1.2);
        assert_eq!(m.penalty(&t, "vgg19", &[GpuId(0), GpuId(4)]), 1.5);
    }

    #[test]
    fn frontera_per_model_covers_table2() {
        let m = LocalityModel::frontera_per_model();
        for model in ["pointnet", "vgg19", "dcgan", "bert", "resnet50", "gpt2"] {
            assert!(m.l_across_for(model) >= 1.0);
        }
        // Unknown models fall back to the default.
        assert_eq!(m.l_across_for("unknown_model"), m.l_across);
    }

    #[test]
    #[should_panic(expected = "must be >= 1.0")]
    fn sub_unity_penalty_panics() {
        LocalityModel::uniform(0.9);
    }

    #[test]
    fn penalty_of_locality_1_is_free_even_across_nodes() {
        // Figure 13's C1.0 point: no locality cost at all.
        let t = ClusterTopology::new(2, 4);
        let m = LocalityModel::uniform(1.0);
        assert_eq!(m.penalty(&t, "x", &[GpuId(0), GpuId(7)]), 1.0);
    }
}
