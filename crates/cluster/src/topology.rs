//! Cluster topology: a flat two-level hierarchy of nodes each holding the
//! same number of GPUs.
//!
//! The paper's systems have flat fat-tree networks "without much
//! over-subscription", so the only locality boundary that matters is the
//! node boundary (Section III-C.1). Frontera's GPU subsystem has 4 GPUs per
//! node; all simulated configurations are 4 GPUs/node as well.

use crate::ids::{GpuId, NodeId};
use serde::{Deserialize, Serialize};

/// A homogeneous `nodes × gpus_per_node` cluster layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs in each node.
    pub gpus_per_node: usize,
}

impl ClusterTopology {
    /// Create a topology. Panics on zero nodes or zero GPUs per node.
    pub fn new(nodes: usize, gpus_per_node: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(gpus_per_node > 0, "nodes need at least one GPU");
        ClusterTopology {
            nodes,
            gpus_per_node,
        }
    }

    /// The paper's 16-node, 64-GPU Sia/testbed configuration.
    pub fn sia_64() -> Self {
        ClusterTopology::new(16, 4)
    }

    /// The paper's 64-node, 256-GPU Synergy configuration.
    pub fn synergy_256() -> Self {
        ClusterTopology::new(64, 4)
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node that hosts a GPU. Panics if the GPU id is out of range.
    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        assert!(
            gpu.index() < self.total_gpus(),
            "{gpu} out of range for {} GPUs",
            self.total_gpus()
        );
        NodeId((gpu.index() / self.gpus_per_node) as u32)
    }

    /// The GPUs hosted by a node, in id order.
    pub fn gpus_of(&self, node: NodeId) -> Vec<GpuId> {
        assert!(node.index() < self.nodes, "{node} out of range");
        let base = node.index() * self.gpus_per_node;
        (base..base + self.gpus_per_node)
            .map(|i| GpuId(i as u32))
            .collect()
    }

    /// All GPU ids, in order.
    pub fn all_gpus(&self) -> Vec<GpuId> {
        (0..self.total_gpus()).map(|i| GpuId(i as u32)).collect()
    }

    /// All node ids, in order.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes).map(|i| NodeId(i as u32)).collect()
    }

    /// Number of distinct nodes an allocation touches.
    pub fn nodes_spanned(&self, gpus: &[GpuId]) -> usize {
        let mut nodes: Vec<usize> = gpus.iter().map(|&g| self.node_of(g).index()).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Whether an allocation crosses a node boundary (pays `L_across`).
    /// Allocation-free — this sits in the simulator's per-job, per-round
    /// execution path.
    pub fn spans_nodes(&self, gpus: &[GpuId]) -> bool {
        match gpus.split_first() {
            None => false,
            Some((&first, rest)) => {
                let node = self.node_of(first);
                rest.iter().any(|&g| self.node_of(g) != node)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        assert_eq!(ClusterTopology::sia_64().total_gpus(), 64);
        assert_eq!(ClusterTopology::synergy_256().total_gpus(), 256);
    }

    #[test]
    fn node_of_maps_contiguously() {
        let t = ClusterTopology::new(2, 4);
        assert_eq!(t.node_of(GpuId(0)), NodeId(0));
        assert_eq!(t.node_of(GpuId(3)), NodeId(0));
        assert_eq!(t.node_of(GpuId(4)), NodeId(1));
        assert_eq!(t.node_of(GpuId(7)), NodeId(1));
    }

    #[test]
    fn gpus_of_inverts_node_of() {
        let t = ClusterTopology::new(3, 4);
        for node in t.all_nodes() {
            for gpu in t.gpus_of(node) {
                assert_eq!(t.node_of(gpu), node);
            }
        }
    }

    #[test]
    fn spans_nodes_detection() {
        let t = ClusterTopology::new(2, 4);
        assert!(!t.spans_nodes(&[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]));
        assert!(t.spans_nodes(&[GpuId(3), GpuId(4)]));
        assert!(!t.spans_nodes(&[GpuId(5)]));
        assert_eq!(t.nodes_spanned(&[GpuId(0), GpuId(4), GpuId(5)]), 2);
    }

    #[test]
    fn empty_allocation_spans_zero_nodes() {
        let t = ClusterTopology::new(2, 4);
        assert_eq!(t.nodes_spanned(&[]), 0);
        assert!(!t.spans_nodes(&[]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_out_of_range_panics() {
        ClusterTopology::new(1, 4).node_of(GpuId(4));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        ClusterTopology::new(0, 4);
    }

    #[test]
    fn all_gpus_count() {
        let t = ClusterTopology::new(5, 3);
        assert_eq!(t.all_gpus().len(), 15);
        assert_eq!(t.all_nodes().len(), 5);
    }
}
