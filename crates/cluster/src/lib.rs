//! # pal-cluster
//!
//! The GPU-cluster model underneath the PAL scheduler reproduction:
//!
//! - [`topology`]: nodes × GPUs-per-node layout (TACC Frontera's GPU
//!   subsystem has 4 GPUs per node; the paper's simulations use 16-node /
//!   64-GPU and 64-node / 256-GPU configurations),
//! - [`locality`]: the two-level locality cost model of Section III-C.1
//!   (`L_within = 1.0` inside a node, `L_across` when an allocation spills
//!   across nodes),
//! - [`profile`]: per-class, per-GPU variability profiles (normalized
//!   iteration times — the PM penalties of Section IV-C), including the
//!   paper's sample-without-repetition construction from measured profiles,
//! - [`state`]: GPU occupancy tracking (free lists, allocate/release),
//! - [`view`]: the incrementally maintained free-GPU view placement
//!   policies borrow ([`ClusterView`]) plus the lazily rebuilt per-class
//!   score orderings ([`ClassOrders`]),
//! - [`ids`]: typed identifiers.

#![warn(missing_docs)]

pub mod ids;
pub mod locality;
pub mod profile;
pub mod profile_io;
pub mod state;
pub mod topology;
pub mod view;

pub use ids::{GpuId, JobClass, NodeId};
pub use locality::LocalityModel;
pub use profile::VariabilityProfile;
pub use profile_io::{read_profile_csv, write_profile_csv, ProfileIoError};
pub use state::ClusterState;
pub use topology::ClusterTopology;
pub use view::{ClassOrders, ClusterView, NodeFree, NodeFreeIter};
