//! Cross-module tests for the cluster crate: profiles built from the GPU
//! model, persisted through CSV, perturbed, and sampled must stay
//! consistent.

use pal_cluster::{
    read_profile_csv, write_profile_csv, ClusterTopology, GpuId, JobClass, VariabilityProfile,
};
use pal_gpumodel::{profiler, ClusterFlavor, GpuSpec, Workload};
use std::io::BufReader;

fn modeled_profile(n: usize, seed: u64) -> VariabilityProfile {
    let gpus = profiler::build_cluster_gpus(&GpuSpec::v100(), ClusterFlavor::Frontera, n, seed);
    let apps: Vec<_> = Workload::TABLE_III.iter().map(|w| w.spec()).collect();
    VariabilityProfile::from_modeled_gpus(&apps, &gpus)
}

#[test]
fn modeled_profile_roundtrips_through_csv() {
    let p = modeled_profile(64, 3);
    let mut buf = Vec::new();
    write_profile_csv(&p, &mut buf).unwrap();
    let q = read_profile_csv(BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(p.num_classes(), q.num_classes());
    assert_eq!(p.num_gpus(), q.num_gpus());
    for c in 0..p.num_classes() {
        for g in 0..p.num_gpus() {
            let (a, b) = (
                p.score(JobClass(c), GpuId(g as u32)),
                q.score(JobClass(c), GpuId(g as u32)),
            );
            assert!(
                (a - b).abs() < 1e-12,
                "class {c} gpu {g}: {a} != {b} after round trip"
            );
        }
    }
}

#[test]
fn sampling_preserves_class_spread_ordering() {
    let gpus = profiler::build_cluster_gpus(&GpuSpec::v100(), ClusterFlavor::Longhorn, 448, 7);
    let profiled: Vec<_> = Workload::TABLE_III
        .iter()
        .map(|w| profiler::profile_cluster(&w.spec(), &gpus))
        .collect();
    let sampled = VariabilityProfile::sample_from_profiled(&profiled, 128, 5);
    assert!(sampled.geomean_variability(JobClass::A) > sampled.geomean_variability(JobClass::C));
}

#[test]
fn perturbation_composes_with_topology() {
    let topo = ClusterTopology::new(4, 4);
    let p = modeled_profile(16, 9);
    let node2 = topo.gpus_of(pal_cluster::NodeId(2));
    let q = p.perturbed(JobClass::A, &node2, 5.0);
    for g in topo.all_gpus() {
        let factor = q.score(JobClass::A, g) / p.score(JobClass::A, g);
        if node2.contains(&g) {
            assert!((factor - 5.0).abs() < 1e-9);
        } else {
            assert!((factor - 1.0).abs() < 1e-12);
        }
        // Other classes untouched everywhere.
        assert_eq!(q.score(JobClass::B, g), p.score(JobClass::B, g));
    }
}

#[test]
fn state_and_topology_agree_on_shape() {
    let topo = ClusterTopology::new(6, 4);
    let state = pal_cluster::ClusterState::new(topo);
    assert_eq!(state.free_gpus().len(), topo.total_gpus());
    assert_eq!(state.view().nodes(), topo.nodes);
    for (n, gpus) in state.view().per_node().enumerate() {
        for g in gpus {
            assert_eq!(topo.node_of(g).index(), n);
        }
    }
}
