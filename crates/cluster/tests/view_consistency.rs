//! Property tests for [`pal_cluster::ClusterView`]: the per-node bitset
//! free lists that `ClusterState` maintains incrementally on every
//! allocate/release must stay equal to (a) a from-scratch rebuild from the
//! occupancy bitmap and (b) a straightforward sorted-`Vec` model of the
//! free lists — the representation the view used before the fixed-width
//! bitset layout — under arbitrary operation sequences.

use pal_cluster::{ClusterState, ClusterTopology, GpuId};
use proptest::prelude::*;

/// Rebuild the per-node free lists the slow way, straight from `is_free`.
fn rebuilt_free_by_node(state: &ClusterState) -> Vec<Vec<GpuId>> {
    let topo = state.topology();
    (0..topo.nodes)
        .map(|n| {
            let base = n * topo.gpus_per_node;
            (base..base + topo.gpus_per_node)
                .map(|i| GpuId(i as u32))
                .filter(|&g| state.is_free(g))
                .collect()
        })
        .collect()
}

/// The pre-bitset representation, maintained the way the old view did it:
/// sorted per-node `Vec`s with binary-search insert/remove. The bitset
/// view must agree with this model after every operation.
struct VecModel {
    free_by_node: Vec<Vec<GpuId>>,
    gpus_per_node: usize,
}

impl VecModel {
    fn all_free(topo: &ClusterTopology) -> Self {
        VecModel {
            free_by_node: (0..topo.nodes)
                .map(|n| {
                    let base = n * topo.gpus_per_node;
                    (base..base + topo.gpus_per_node)
                        .map(|i| GpuId(i as u32))
                        .collect()
                })
                .collect(),
            gpus_per_node: topo.gpus_per_node,
        }
    }

    fn allocate(&mut self, g: GpuId) {
        let list = &mut self.free_by_node[g.index() / self.gpus_per_node];
        let pos = list.binary_search(&g).expect("model missing free GPU");
        list.remove(pos);
    }

    fn release(&mut self, g: GpuId) {
        let list = &mut self.free_by_node[g.index() / self.gpus_per_node];
        let pos = list.binary_search(&g).expect_err("model already holds GPU");
        list.insert(pos, g);
    }
}

/// Assert the incrementally maintained bitset view matches the rebuild and
/// the `Vec` model (lists, lengths, counts, words, and the flat iterator).
fn assert_view_consistent(state: &ClusterState, model: &VecModel) {
    let want = rebuilt_free_by_node(state);
    let got: Vec<Vec<GpuId>> = state
        .view()
        .per_node()
        .map(|nf| nf.iter().collect())
        .collect();
    assert_eq!(got, want, "view free lists diverged from bitmap rebuild");
    assert_eq!(
        got, model.free_by_node,
        "bitset view diverged from the sorted-Vec model"
    );
    let lens: Vec<usize> = state.view().per_node().map(|nf| nf.len()).collect();
    let model_lens: Vec<usize> = model.free_by_node.iter().map(Vec::len).collect();
    assert_eq!(lens, model_lens, "NodeFree::len diverged from model");
    assert_eq!(
        state.free_count_by_node(),
        &model_lens[..],
        "free counters diverged from free lists"
    );
    let flat: Vec<GpuId> = state.view().free_iter().collect();
    assert_eq!(flat, state.free_gpus(), "free_iter diverged from free_gpus");
    // The raw words must encode exactly the model's membership.
    for (n, nf) in state.view().per_node().enumerate() {
        for (w, &word) in nf.words().iter().enumerate() {
            for b in 0..64usize {
                let local = w * 64 + b;
                let set = word & (1u64 << b) != 0;
                let in_model = local < model.gpus_per_node
                    && model.free_by_node[n]
                        .binary_search(&GpuId((n * model.gpus_per_node + local) as u32))
                        .is_ok();
                assert_eq!(set, in_model, "word bit {local} of node {n} wrong");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary toggle sequences: each step allocates the GPU if free,
    /// releases it otherwise. After every single step the bitset view must
    /// equal both a from-scratch rebuild and the sorted-Vec model.
    #[test]
    fn incremental_view_equals_rebuild_under_arbitrary_ops(
        nodes in 1usize..=6,
        gpn in 1usize..=8,
        ops in proptest::collection::vec(0usize..48, 1..200),
    ) {
        let topo = ClusterTopology::new(nodes, gpn);
        let mut state = ClusterState::new(topo);
        let mut model = VecModel::all_free(&topo);
        for op in ops {
            let g = GpuId((op % topo.total_gpus()) as u32);
            if state.is_free(g) {
                state.allocate(&[g]);
                model.allocate(g);
            } else {
                state.release(&[g]);
                model.release(g);
            }
            assert_view_consistent(&state, &model);
        }
    }

    /// Multi-word spans: nodes wider than 64 GPUs exercise the word-
    /// boundary arithmetic of the fixed-width layout.
    #[test]
    fn wide_nodes_keep_view_consistent(
        nodes in 1usize..=3,
        gpn in 60usize..=130,
        ops in proptest::collection::vec(0usize..512, 1..80),
    ) {
        let topo = ClusterTopology::new(nodes, gpn);
        let mut state = ClusterState::new(topo);
        let mut model = VecModel::all_free(&topo);
        for op in ops {
            let g = GpuId((op % topo.total_gpus()) as u32);
            if state.is_free(g) {
                state.allocate(&[g]);
                model.allocate(g);
            } else {
                state.release(&[g]);
                model.release(g);
            }
            assert_view_consistent(&state, &model);
        }
    }

    /// Batched variant: allocate a random subset, release a sub-subset,
    /// repeat — exercising the multi-GPU allocate/release paths the
    /// engine actually uses (whole-job allocations).
    #[test]
    fn batched_allocate_release_keeps_view_consistent(
        nodes in 1usize..=5,
        gpn in 2usize..=6,
        picks in proptest::collection::vec(any::<bool>(), 30),
        keep in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let topo = ClusterTopology::new(nodes, gpn);
        let mut state = ClusterState::new(topo);
        let mut model = VecModel::all_free(&topo);
        let n = topo.total_gpus();
        let batch: Vec<GpuId> = picks
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p && i < n)
            .map(|(i, _)| GpuId(i as u32))
            .collect();
        state.allocate(&batch);
        for &g in &batch {
            model.allocate(g);
        }
        assert_view_consistent(&state, &model);
        let released: Vec<GpuId> = batch
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| !k)
            .map(|(&g, _)| g)
            .collect();
        state.release(&released);
        for &g in &released {
            model.release(g);
        }
        assert_view_consistent(&state, &model);
        // Round-trip the remainder so the state ends all-free.
        let rest: Vec<GpuId> = batch
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| k)
            .map(|(&g, _)| g)
            .collect();
        state.release(&rest);
        for &g in &rest {
            model.release(g);
        }
        assert_view_consistent(&state, &model);
        prop_assert_eq!(state.free_count(), n);
    }
}
