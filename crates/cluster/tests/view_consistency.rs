//! Property tests for [`pal_cluster::ClusterView`]: the per-node free
//! lists that `ClusterState` maintains incrementally on every
//! allocate/release must stay equal to a from-scratch rebuild from the
//! occupancy bitmap, under arbitrary operation sequences.

use pal_cluster::{ClusterState, ClusterTopology, GpuId};
use proptest::prelude::*;

/// Rebuild the per-node free lists the slow way, straight from `is_free`.
fn rebuilt_free_by_node(state: &ClusterState) -> Vec<Vec<GpuId>> {
    let topo = state.topology();
    (0..topo.nodes)
        .map(|n| {
            let base = n * topo.gpus_per_node;
            (base..base + topo.gpus_per_node)
                .map(|i| GpuId(i as u32))
                .filter(|&g| state.is_free(g))
                .collect()
        })
        .collect()
}

/// Assert the incrementally maintained view matches the rebuild (lists,
/// counts, and the flat free iterator).
fn assert_view_consistent(state: &ClusterState) {
    let want = rebuilt_free_by_node(state);
    let got: Vec<Vec<GpuId>> = state.view().per_node().map(<[GpuId]>::to_vec).collect();
    assert_eq!(got, want, "view free lists diverged from bitmap rebuild");
    let counts: Vec<usize> = want.iter().map(Vec::len).collect();
    assert_eq!(
        state.free_count_by_node(),
        &counts[..],
        "free counters diverged from free lists"
    );
    let flat: Vec<GpuId> = state.view().free_iter().collect();
    assert_eq!(flat, state.free_gpus(), "free_iter diverged from free_gpus");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary toggle sequences: each step allocates the GPU if free,
    /// releases it otherwise. After every single step the view must equal
    /// a from-scratch rebuild.
    #[test]
    fn incremental_view_equals_rebuild_under_arbitrary_ops(
        nodes in 1usize..=6,
        gpn in 1usize..=8,
        ops in proptest::collection::vec(0usize..48, 1..200),
    ) {
        let topo = ClusterTopology::new(nodes, gpn);
        let mut state = ClusterState::new(topo);
        for op in ops {
            let g = GpuId((op % topo.total_gpus()) as u32);
            if state.is_free(g) {
                state.allocate(&[g]);
            } else {
                state.release(&[g]);
            }
            assert_view_consistent(&state);
        }
    }

    /// Batched variant: allocate a random subset, release a sub-subset,
    /// repeat — exercising the multi-GPU allocate/release paths the
    /// engine actually uses (whole-job allocations).
    #[test]
    fn batched_allocate_release_keeps_view_consistent(
        nodes in 1usize..=5,
        gpn in 2usize..=6,
        picks in proptest::collection::vec(any::<bool>(), 30),
        keep in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let topo = ClusterTopology::new(nodes, gpn);
        let mut state = ClusterState::new(topo);
        let n = topo.total_gpus();
        let batch: Vec<GpuId> = picks
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p && i < n)
            .map(|(i, _)| GpuId(i as u32))
            .collect();
        state.allocate(&batch);
        assert_view_consistent(&state);
        let released: Vec<GpuId> = batch
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| !k)
            .map(|(&g, _)| g)
            .collect();
        state.release(&released);
        assert_view_consistent(&state);
        // Round-trip the remainder so the state ends all-free.
        let rest: Vec<GpuId> = batch
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| k)
            .map(|(&g, _)| g)
            .collect();
        state.release(&rest);
        assert_view_consistent(&state);
        prop_assert_eq!(state.free_count(), n);
    }
}
